//! Turns a [`DatasetConfig`] into a fully wired [`ImdppInstance`].

use crate::config::{DatasetConfig, ImportanceDistribution, SocialModel};
use imdpp_core::{CostModel, ImdppInstance};
use imdpp_diffusion::Scenario;
use imdpp_graph::generators::{erdos_renyi, preferential_attachment, watts_strogatz};
use imdpp_graph::{CsrGraph, SocialGraph, UserId};
use imdpp_kg::hin::KnowledgeGraphBuilder;
use imdpp_kg::{EdgeType, ItemCatalog, KnowledgeGraph, MetaGraph, NodeType, RelevanceModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A generated dataset: the problem instance plus the knowledge graph it was
/// built from (kept for statistics output).
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// The dataset configuration used.
    pub config: DatasetConfig,
    /// The knowledge graph (facts) backing the relevance model.
    pub knowledge_graph: KnowledgeGraph,
    /// The ready-to-solve problem instance (budget and `T` are placeholders;
    /// use [`imdpp_core::ImdppInstance::with_budget`] /
    /// [`imdpp_core::ImdppInstance::with_promotions`] per experiment).
    pub instance: ImdppInstance,
}

/// Generates a dataset from its configuration.
///
/// # Panics
/// Panics if the configuration fails validation; the presets in
/// [`crate::catalog`] always validate.
pub fn generate(config: &DatasetConfig) -> GeneratedDataset {
    config.validate().expect("invalid dataset configuration");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let social = build_social_graph(config, &mut rng);
    let (kg, catalog) = build_knowledge_graph(config, &mut rng);
    let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));

    // Base preferences uniform in the configured range.
    let (lo, hi) = config.base_preference_range;
    let mut base_preferences = Vec::with_capacity(config.users * config.items);
    for _ in 0..config.users * config.items {
        base_preferences.push(rng.gen_range(lo..=hi));
    }

    let scenario = Scenario::builder()
        .social(social)
        .catalog(catalog)
        .relevance(relevance)
        .base_preferences(base_preferences)
        .initial_weight(config.initial_metagraph_weight)
        .build()
        .expect("generated scenario must be valid");

    let costs = CostModel::degree_over_preference(&scenario, config.cost_scale);
    // Placeholder budget / promotions; experiments override them.
    let instance =
        ImdppInstance::new(scenario, costs, 100.0, 10).expect("generated instance must be valid");

    GeneratedDataset {
        config: config.clone(),
        knowledge_graph: kg,
        instance,
    }
}

fn build_social_graph(config: &DatasetConfig, rng: &mut StdRng) -> SocialGraph {
    let topology: CsrGraph = match config.social_model {
        SocialModel::PreferentialAttachment { links_per_node } => {
            preferential_attachment(config.users, links_per_node, rng.gen())
        }
        SocialModel::SmallWorld { neighbours, rewire } => {
            watts_strogatz(config.users, neighbours, rewire, rng.gen())
        }
        SocialModel::Random { edge_probability } => {
            erdos_renyi(config.users, edge_probability, rng.gen())
        }
    };
    // Influence strengths: jittered around the configured average so that the
    // dataset-level mean matches Table II.
    let avg = config.avg_influence_strength;
    let strength_seed: u64 = rng.gen();
    let mut srng = StdRng::seed_from_u64(strength_seed);
    let weighted = topology.map_weights(|_, _, _| {
        let jitter = 0.5 + srng.gen::<f64>(); // in [0.5, 1.5)
        (avg * jitter).clamp(0.001, 1.0)
    });
    // For undirected datasets the topology already contains both directions.
    SocialGraph::new(weighted, config.directed_friendships)
}

fn build_knowledge_graph(
    config: &DatasetConfig,
    rng: &mut StdRng,
) -> (KnowledgeGraph, ItemCatalog) {
    let mut builder = KnowledgeGraphBuilder::new();
    // Items first so their dense ids are 0..items.
    let item_nodes: Vec<_> = (0..config.items)
        .map(|i| builder.add_node(NodeType::Item, format!("{}-item-{i}", config.name)))
        .collect();
    let feature_nodes: Vec<_> = (0..config.kg_features)
        .map(|i| builder.add_node(NodeType::Feature, format!("feature-{i}")))
        .collect();
    let brand_nodes: Vec<_> = (0..config.kg_brands)
        .map(|i| builder.add_node(NodeType::Brand, format!("brand-{i}")))
        .collect();
    let category_nodes: Vec<_> = (0..config.kg_categories)
        .map(|i| builder.add_node(NodeType::Category, format!("category-{i}")))
        .collect();
    let keyword_nodes: Vec<_> = (0..config.kg_keywords)
        .map(|i| builder.add_node(NodeType::Keyword, format!("keyword-{i}")))
        .collect();

    for (idx, &item) in item_nodes.iter().enumerate() {
        // Features (complementary evidence through shared features).
        if !feature_nodes.is_empty() {
            for _ in 0..config.features_per_item {
                let f = feature_nodes[rng.gen_range(0..feature_nodes.len())];
                builder.add_fact(item, f, EdgeType::Supports);
            }
        }
        // Exactly one brand per item (when brands exist).
        if !brand_nodes.is_empty() {
            let b = brand_nodes[rng.gen_range(0..brand_nodes.len())];
            builder.add_fact(item, b, EdgeType::ProducedBy);
        }
        // Exactly one category per item (substitutable evidence).
        if !category_nodes.is_empty() {
            let c = category_nodes[idx % category_nodes.len()];
            builder.add_fact(item, c, EdgeType::BelongsTo);
        }
        // Keywords.
        if !keyword_nodes.is_empty() {
            for _ in 0..config.keywords_per_item {
                let k = keyword_nodes[rng.gen_range(0..keyword_nodes.len())];
                builder.add_fact(item, k, EdgeType::TaggedWith);
            }
        }
    }
    // Explicit "also bought" RelatedTo edges between random item pairs.
    let total_pairs = config.items * (config.items.saturating_sub(1)) / 2;
    let related_edges = (total_pairs as f64 * config.related_pair_fraction).round() as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < related_edges && guard < related_edges * 20 + 100 {
        guard += 1;
        let a = rng.gen_range(0..config.items);
        let b = rng.gen_range(0..config.items);
        if a == b {
            continue;
        }
        builder.add_fact(item_nodes[a], item_nodes[b], EdgeType::RelatedTo);
        added += 1;
    }

    let kg = builder.build();

    // Item importances.
    let importances: Vec<f64> = (0..config.items)
        .map(|_| sample_importance(&config.importance, rng))
        .collect();
    let names = (0..config.items)
        .map(|i| format!("{}-item-{i}", config.name))
        .collect();
    let catalog = ItemCatalog::with_names(importances, names);
    (kg, catalog)
}

fn sample_importance(dist: &ImportanceDistribution, rng: &mut StdRng) -> f64 {
    match *dist {
        ImportanceDistribution::Uniform { value } => value,
        ImportanceDistribution::Range { lo, hi } => rng.gen_range(lo..=hi),
        ImportanceDistribution::LogNormal { mu, sigma } => {
            // Box–Muller transform (the whitelisted rand crate has no normal
            // distribution without rand_distr).
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mu + sigma * z).exp().clamp(0.05, 20.0)
        }
    }
}

/// Convenience: average out-degree of a user sample, used by tests to verify
/// the topology shape.
pub fn average_out_degree(instance: &ImdppInstance) -> f64 {
    let social = instance.scenario().social();
    let n = social.user_count().max(1);
    social
        .users()
        .map(|u| social.out_degree(u) as f64)
        .sum::<f64>()
        / n as f64
}

/// Convenience: a deterministic list of every user (used by experiments).
pub fn all_users(instance: &ImdppInstance) -> Vec<UserId> {
    instance.scenario().users().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetKind;
    use imdpp_kg::stats::KgStats;

    #[test]
    fn tiny_amazon_generates_consistently() {
        let ds = generate(&DatasetKind::AmazonTiny.config());
        assert_eq!(ds.instance.scenario().user_count(), 100);
        assert_eq!(ds.instance.scenario().item_count(), 8);
        assert!(ds.instance.scenario().social().edge_count() > 0);
        assert!(ds.knowledge_graph.fact_count() > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&DatasetKind::AmazonTiny.config());
        let b = generate(&DatasetKind::AmazonTiny.config());
        assert_eq!(
            a.instance.scenario().social().edge_count(),
            b.instance.scenario().social().edge_count()
        );
        assert_eq!(
            a.instance.scenario().catalog().average_importance(),
            b.instance.scenario().catalog().average_importance()
        );
    }

    #[test]
    fn average_influence_strength_is_near_target() {
        let cfg = DatasetKind::YelpSmall.config().scaled(0.25);
        let ds = generate(&cfg);
        let measured = ds.instance.scenario().social().average_influence_strength();
        assert!(
            (measured - cfg.avg_influence_strength).abs() < cfg.avg_influence_strength * 0.25,
            "measured {measured} vs target {}",
            cfg.avg_influence_strength
        );
    }

    #[test]
    fn directedness_follows_configuration() {
        let amazon = generate(&DatasetKind::AmazonTiny.config());
        assert!(amazon.instance.scenario().social().is_directed());
        let yelp = generate(&DatasetKind::YelpSmall.config().scaled(0.1));
        assert!(!yelp.instance.scenario().social().is_directed());
    }

    #[test]
    fn yelp_kg_is_richer_than_douban_kg() {
        // Table II: Yelp / Amazon have twice the node- and edge-type variety
        // of Douban / Gowalla.  Our synthetic KGs use 5 entity types for the
        // former (item, feature, brand, category, keyword; the paper's sixth
        // type is the user node, which lives in the social graph here) and 3
        // for the latter.
        let yelp = generate(&DatasetKind::YelpSmall.config().scaled(0.1));
        let stats = KgStats::of(&yelp.knowledge_graph);
        assert_eq!(stats.node_type_count, 5);
        let douban = generate(&DatasetKind::DoubanSmall.config().scaled(0.05));
        let stats = KgStats::of(&douban.knowledge_graph);
        assert_eq!(stats.node_type_count, 3);
    }

    #[test]
    fn base_preferences_respect_range() {
        let cfg = DatasetKind::GowallaSmall.config().scaled(0.05);
        let ds = generate(&cfg);
        let scenario = ds.instance.scenario();
        let (lo, hi) = cfg.base_preference_range;
        for u in scenario.users().take(10) {
            for x in scenario.items() {
                let p = scenario.base_preference(u, x);
                assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn costs_are_positive_and_degree_driven() {
        let ds = generate(&DatasetKind::AmazonTiny.config());
        let inst = &ds.instance;
        let social = inst.scenario().social();
        let hub = social
            .users()
            .max_by_key(|u| social.out_degree(*u))
            .unwrap();
        let leaf = social
            .users()
            .min_by_key(|u| social.out_degree(*u))
            .unwrap();
        let item = imdpp_graph::ItemId(0);
        assert!(inst.cost(hub, item) > 0.0);
        assert!(inst.cost(hub, item) >= inst.cost(leaf, item) * 0.5);
    }

    #[test]
    fn relevance_model_has_both_relationship_kinds() {
        let ds = generate(&DatasetKind::AmazonTiny.config());
        let model = ds.instance.scenario().relevance();
        let items: Vec<_> = ds.instance.scenario().items().collect();
        let mut any_comp = false;
        let mut any_sub = false;
        for &x in &items {
            for &y in &items {
                if x == y {
                    continue;
                }
                if model.base_relevance(x, y, imdpp_kg::RelationKind::Complementary) > 0.0 {
                    any_comp = true;
                }
                if model.base_relevance(x, y, imdpp_kg::RelationKind::Substitutable) > 0.0 {
                    any_sub = true;
                }
            }
        }
        assert!(any_comp, "expected at least one complementary pair");
        assert!(any_sub, "expected at least one substitutable pair");
    }

    #[test]
    fn heavy_tail_degree_distribution_for_preferential_attachment() {
        let ds = generate(&DatasetKind::YelpSmall.config().scaled(0.5));
        let stats = ds.instance.scenario().social().degree_stats();
        assert!(stats.max_out_degree as f64 > 3.0 * stats.mean_out_degree);
    }
}
