//! # imdpp-datasets
//!
//! Synthetic stand-ins for the datasets of the paper's evaluation.
//!
//! The paper evaluates on crawls of Douban, Gowalla, Yelp and Amazon
//! (+Pokec friendships) — corpora that are not redistributable — and on five
//! recruited course-promotion classes.  This crate generates synthetic
//! datasets that reproduce the *shape* of those corpora at laptop scale
//! (heavy-tailed friendship degrees, the node/edge type mix of each KG, the
//! average influence strengths and item-importance levels of Table II, the
//! class sizes of Table III), which is what the relative behaviour of the
//! algorithms depends on.  DESIGN.md §3 documents the substitution.
//!
//! * [`config`] — declarative dataset description,
//! * [`generator`] — config → fully wired [`imdpp_core::ImdppInstance`],
//! * [`catalog`] — presets for the four Table II datasets (plus the 100-user
//!   "Amazon-small" sample used against OPT in Fig. 8),
//! * [`classes`] — the course-promotion classes A–E of Table III / Fig. 12,
//! * [`stats`] — Table II style statistics of a generated dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod classes;
pub mod config;
pub mod generator;
pub mod stats;

pub use catalog::DatasetKind;
pub use classes::{generate_class, ClassSpec};
pub use config::DatasetConfig;
pub use generator::generate;
pub use stats::DatasetStats;
