//! Table II style statistics of a generated dataset.

use crate::generator::GeneratedDataset;
use imdpp_kg::stats::KgStats;
use serde::{Deserialize, Serialize};

/// The row of Table II corresponding to one dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of KG node types.
    pub node_types: usize,
    /// Total KG nodes.
    pub nodes: usize,
    /// Number of users in the social network.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Number of KG edge types.
    pub edge_types: usize,
    /// Total KG fact edges.
    pub edges: usize,
    /// Number of friendships.
    pub friendships: usize,
    /// Whether friendships are directed.
    pub directed: bool,
    /// Average initial influence strength.
    pub avg_influence_strength: f64,
    /// Average item importance.
    pub avg_item_importance: f64,
}

impl DatasetStats {
    /// Computes the Table II row of a generated dataset.
    pub fn of(dataset: &GeneratedDataset) -> Self {
        let kg_stats = KgStats::of(&dataset.knowledge_graph);
        let scenario = dataset.instance.scenario();
        DatasetStats {
            name: dataset.config.name.clone(),
            node_types: kg_stats.node_type_count,
            nodes: kg_stats.node_count,
            users: scenario.user_count(),
            items: scenario.item_count(),
            edge_types: kg_stats.edge_type_count,
            edges: kg_stats.fact_count,
            friendships: scenario.social().friendship_count(),
            directed: scenario.social().is_directed(),
            avg_influence_strength: scenario.social().average_influence_strength(),
            avg_item_importance: scenario.catalog().average_importance(),
        }
    }

    /// The header of the statistics table printed by the harness.
    pub fn header() -> String {
        format!(
            "{:<12} {:>10} {:>8} {:>7} {:>6} {:>10} {:>8} {:>11} {:>9} {:>13} {:>12}",
            "dataset",
            "node-types",
            "nodes",
            "users",
            "items",
            "edge-types",
            "edges",
            "friendships",
            "directed",
            "avg-strength",
            "avg-import."
        )
    }

    /// One formatted row.
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>10} {:>8} {:>7} {:>6} {:>10} {:>8} {:>11} {:>9} {:>13.3} {:>12.2}",
            self.name,
            self.node_types,
            self.nodes,
            self.users,
            self.items,
            self.edge_types,
            self.edges,
            self.friendships,
            self.directed,
            self.avg_influence_strength,
            self.avg_item_importance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetKind;
    use crate::generator::generate;

    #[test]
    fn stats_reflect_the_generated_dataset() {
        let ds = generate(&DatasetKind::AmazonTiny.config());
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.users, 100);
        assert_eq!(stats.items, 8);
        assert!(stats.nodes > stats.items);
        assert!(stats.avg_influence_strength > 0.0);
        assert!(stats.avg_item_importance > 0.0);
        assert!(stats.directed);
    }

    #[test]
    fn header_and_row_have_content() {
        let ds = generate(&DatasetKind::AmazonTiny.config());
        let stats = DatasetStats::of(&ds);
        assert!(DatasetStats::header().contains("friendships"));
        assert!(stats.row().contains("amazon-tiny"));
    }
}
