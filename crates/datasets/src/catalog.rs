//! Presets mirroring the shape of the Table II datasets at reduced scale.
//!
//! | Preset        | Paper dataset | Users (paper → here) | Items (paper → here) | Friendships | Avg. strength | Avg. importance |
//! |---------------|---------------|----------------------|----------------------|-------------|---------------|-----------------|
//! | `DoubanSmall` | Douban        | 5.5 M → 1 500        | 2.1 M → 60           | undirected  | 0.011         | ≈ 2.1           |
//! | `GowallaSmall`| Gowalla       | 407 K → 1 000        | 2.8 M → 50           | undirected  | 0.092         | ≈ 0.5           |
//! | `YelpSmall`   | Yelp          | 17 K → 800           | 22 K → 40            | undirected  | 0.121         | ≈ 1.6           |
//! | `AmazonSmall` | Amazon+Pokec  | 1.6 M → 1 200        | 20 K → 50            | directed    | 0.050         | ≈ 1.8           |
//! | `AmazonTiny`  | 100-user Amazon sample of Fig. 8 | 100 | 8 | directed | 0.050 | ≈ 1.8 |
//!
//! The node/edge *type* counts of each KG follow Table II: Douban and
//! Gowalla have 3 node/edge types, Yelp and Amazon have 6.

use crate::config::{DatasetConfig, ImportanceDistribution, SocialModel};
use serde::{Deserialize, Serialize};

/// The available dataset presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Scaled-down Douban-shaped dataset.
    DoubanSmall,
    /// Scaled-down Gowalla-shaped dataset.
    GowallaSmall,
    /// Scaled-down Yelp-shaped dataset.
    YelpSmall,
    /// Scaled-down Amazon(+Pokec)-shaped dataset.
    AmazonSmall,
    /// The 100-user Amazon sample used for the comparison against OPT
    /// (Fig. 8).
    AmazonTiny,
}

impl DatasetKind {
    /// All presets, in the order the paper lists them.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::DoubanSmall,
            DatasetKind::GowallaSmall,
            DatasetKind::YelpSmall,
            DatasetKind::AmazonSmall,
            DatasetKind::AmazonTiny,
        ]
    }

    /// The four "large" datasets of Figs. 9–14 (everything except the
    /// 100-user sample).
    pub fn large() -> [DatasetKind; 4] {
        [
            DatasetKind::DoubanSmall,
            DatasetKind::GowallaSmall,
            DatasetKind::YelpSmall,
            DatasetKind::AmazonSmall,
        ]
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::DoubanSmall => "douban",
            DatasetKind::GowallaSmall => "gowalla",
            DatasetKind::YelpSmall => "yelp",
            DatasetKind::AmazonSmall => "amazon",
            DatasetKind::AmazonTiny => "amazon-tiny",
        }
    }

    /// The dataset configuration of the preset.
    pub fn config(&self) -> DatasetConfig {
        match self {
            DatasetKind::DoubanSmall => DatasetConfig {
                name: "douban".to_string(),
                users: 1500,
                items: 60,
                directed_friendships: false,
                social_model: SocialModel::PreferentialAttachment { links_per_node: 8 },
                avg_influence_strength: 0.011,
                importance: ImportanceDistribution::LogNormal {
                    mu: 0.55,
                    sigma: 0.6,
                },
                kg_features: 0,
                kg_brands: 0,
                kg_categories: 12,
                kg_keywords: 40,
                features_per_item: 0,
                keywords_per_item: 4,
                related_pair_fraction: 0.03,
                base_preference_range: (0.05, 0.4),
                cost_scale: 0.3,
                initial_metagraph_weight: 0.2,
                seed: 0xD0BA,
            },
            DatasetKind::GowallaSmall => DatasetConfig {
                name: "gowalla".to_string(),
                users: 1000,
                items: 50,
                directed_friendships: false,
                social_model: SocialModel::PreferentialAttachment { links_per_node: 4 },
                avg_influence_strength: 0.092,
                importance: ImportanceDistribution::Range { lo: 0.1, hi: 0.9 },
                kg_features: 0,
                kg_brands: 0,
                kg_categories: 10,
                kg_keywords: 30,
                features_per_item: 0,
                keywords_per_item: 3,
                related_pair_fraction: 0.04,
                base_preference_range: (0.05, 0.45),
                cost_scale: 0.4,
                initial_metagraph_weight: 0.2,
                seed: 0x60A11A,
            },
            DatasetKind::YelpSmall => DatasetConfig {
                name: "yelp".to_string(),
                users: 800,
                items: 40,
                directed_friendships: false,
                social_model: SocialModel::PreferentialAttachment { links_per_node: 5 },
                avg_influence_strength: 0.121,
                importance: ImportanceDistribution::LogNormal {
                    mu: 0.3,
                    sigma: 0.5,
                },
                kg_features: 25,
                kg_brands: 10,
                kg_categories: 8,
                kg_keywords: 20,
                features_per_item: 3,
                keywords_per_item: 2,
                related_pair_fraction: 0.05,
                base_preference_range: (0.08, 0.5),
                cost_scale: 0.5,
                initial_metagraph_weight: 0.2,
                seed: 0x7E17,
            },
            DatasetKind::AmazonSmall => DatasetConfig {
                name: "amazon".to_string(),
                users: 1200,
                items: 50,
                directed_friendships: true,
                social_model: SocialModel::PreferentialAttachment { links_per_node: 6 },
                avg_influence_strength: 0.050,
                importance: ImportanceDistribution::LogNormal {
                    mu: 0.4,
                    sigma: 0.6,
                },
                kg_features: 30,
                kg_brands: 12,
                kg_categories: 10,
                kg_keywords: 25,
                features_per_item: 3,
                keywords_per_item: 2,
                related_pair_fraction: 0.05,
                base_preference_range: (0.05, 0.4),
                cost_scale: 0.4,
                initial_metagraph_weight: 0.2,
                seed: 0xA3A2,
            },
            DatasetKind::AmazonTiny => DatasetConfig {
                name: "amazon-tiny".to_string(),
                users: 100,
                items: 8,
                directed_friendships: true,
                social_model: SocialModel::PreferentialAttachment { links_per_node: 3 },
                avg_influence_strength: 0.2,
                importance: ImportanceDistribution::LogNormal {
                    mu: 0.4,
                    sigma: 0.5,
                },
                kg_features: 8,
                kg_brands: 3,
                kg_categories: 3,
                kg_keywords: 6,
                features_per_item: 2,
                keywords_per_item: 1,
                related_pair_fraction: 0.15,
                base_preference_range: (0.1, 0.6),
                cost_scale: 1.3,
                initial_metagraph_weight: 0.2,
                seed: 0xA3A27,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            DatasetKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn large_excludes_the_tiny_sample() {
        assert!(!DatasetKind::large().contains(&DatasetKind::AmazonTiny));
    }

    #[test]
    fn only_amazon_has_directed_friendships() {
        for kind in DatasetKind::all() {
            let directed = kind.config().directed_friendships;
            match kind {
                DatasetKind::AmazonSmall | DatasetKind::AmazonTiny => assert!(directed),
                _ => assert!(!directed),
            }
        }
    }

    #[test]
    fn douban_and_gowalla_have_three_node_types_worth_of_kg() {
        // Douban / Gowalla KGs use items + categories + keywords (3 types).
        let c = DatasetKind::DoubanSmall.config();
        assert_eq!(c.kg_features, 0);
        assert_eq!(c.kg_brands, 0);
        assert!(c.kg_categories > 0 && c.kg_keywords > 0);
        // Yelp / Amazon add features and brands (6 types total).
        let c = DatasetKind::YelpSmall.config();
        assert!(c.kg_features > 0 && c.kg_brands > 0);
    }

    #[test]
    fn influence_strengths_follow_table_two_ordering() {
        // Yelp > Gowalla > Amazon > Douban in Table II.
        let s = |k: DatasetKind| k.config().avg_influence_strength;
        assert!(s(DatasetKind::YelpSmall) > s(DatasetKind::GowallaSmall));
        assert!(s(DatasetKind::GowallaSmall) > s(DatasetKind::AmazonSmall));
        assert!(s(DatasetKind::AmazonSmall) > s(DatasetKind::DoubanSmall));
    }
}
