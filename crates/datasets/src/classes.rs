//! The course-promotion classes of the empirical study (Table III, Fig. 12).
//!
//! Each class is a small, dense friendship graph of computer-science
//! students; 30 elective courses form the item catalogue, with a curriculum
//! knowledge graph of course keywords, related compulsory courses (features)
//! and research fields (categories).  Class sizes and edge counts follow
//! Table III; the friendship graphs are dense small-world graphs tuned to
//! reach the reported edge counts.

use imdpp_core::{CostModel, ImdppInstance};
use imdpp_diffusion::Scenario;
use imdpp_graph::{SocialGraph, UserId};
use imdpp_kg::hin::KnowledgeGraphBuilder;
use imdpp_kg::{EdgeType, ItemCatalog, KnowledgeGraph, MetaGraph, NodeType, RelevanceModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Specification of one recruited class (a row of Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassSpec {
    /// Class identifier ('A'–'E').
    pub id: char,
    /// Number of students.
    pub users: usize,
    /// Number of directed friendship edges reported in Table III.
    pub edges: usize,
    /// Random seed for this class.
    pub seed: u64,
}

impl ClassSpec {
    /// The five classes of Table III.
    pub fn all() -> [ClassSpec; 5] {
        [
            ClassSpec {
                id: 'A',
                users: 33,
                edges: 293,
                seed: 0xA,
            },
            ClassSpec {
                id: 'B',
                users: 26,
                edges: 420,
                seed: 0xB,
            },
            ClassSpec {
                id: 'C',
                users: 22,
                edges: 387,
                seed: 0xC,
            },
            ClassSpec {
                id: 'D',
                users: 20,
                edges: 227,
                seed: 0xD,
            },
            ClassSpec {
                id: 'E',
                users: 20,
                edges: 308,
                seed: 0xE,
            },
        ]
    }
}

/// Number of elective courses promoted in the empirical study.
pub const COURSE_COUNT: usize = 30;

/// The curriculum knowledge graph shared by all classes: 30 courses with
/// keywords, related compulsory courses and research fields.
pub fn course_knowledge_graph(seed: u64) -> (KnowledgeGraph, ItemCatalog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = KnowledgeGraphBuilder::new();
    let course_names = [
        "artificial intelligence",
        "objective-oriented programming",
        "big data",
        "deep learning",
        "natural language processing",
        "cloud computing",
        "IoT",
        "software design for cloud computing",
        "python",
        "C++",
        "computer vision",
        "databases",
        "operating systems",
        "compilers",
        "computer networks",
        "distributed systems",
        "information retrieval",
        "data mining",
        "reinforcement learning",
        "computer graphics",
        "cryptography",
        "network security",
        "parallel programming",
        "embedded systems",
        "web programming",
        "mobile app development",
        "numerical methods",
        "algorithm design",
        "software testing",
        "human-computer interaction",
    ];
    assert_eq!(course_names.len(), COURSE_COUNT);
    let courses: Vec<_> = course_names
        .iter()
        .map(|n| b.add_node(NodeType::Item, *n))
        .collect();
    // Research fields (categories): substitutable evidence within a field.
    let fields = [
        "machine learning",
        "systems",
        "programming languages",
        "security",
        "data management",
        "applications",
    ];
    let field_nodes: Vec<_> = fields
        .iter()
        .map(|f| b.add_node(NodeType::Category, *f))
        .collect();
    // Compulsory prerequisite courses (features): complementary evidence.
    let prereqs = [
        "calculus",
        "linear algebra",
        "probability",
        "intro to programming",
        "data structures",
        "discrete math",
        "computer architecture",
        "statistics",
    ];
    let prereq_nodes: Vec<_> = prereqs
        .iter()
        .map(|p| b.add_node(NodeType::Feature, *p))
        .collect();
    // Keywords extracted from syllabuses: substitutable evidence.
    let keywords = [
        "neural networks",
        "optimization",
        "SQL",
        "concurrency",
        "virtualization",
        "sensors",
        "agile",
        "object orientation",
        "scripting",
        "pointers",
        "graphs",
        "caching",
        "protocols",
        "testing",
        "usability",
    ];
    let keyword_nodes: Vec<_> = keywords
        .iter()
        .map(|k| b.add_node(NodeType::Keyword, *k))
        .collect();

    for (i, &course) in courses.iter().enumerate() {
        // One research field each (grouped so that related courses share it).
        let field = field_nodes[i % field_nodes.len()];
        b.add_fact(course, field, EdgeType::BelongsTo);
        // Two or three prerequisites.
        for _ in 0..rng.gen_range(2..=3) {
            let p = prereq_nodes[rng.gen_range(0..prereq_nodes.len())];
            b.add_fact(course, p, EdgeType::Supports);
        }
        // One or two keywords.
        for _ in 0..rng.gen_range(1..=2) {
            let k = keyword_nodes[rng.gen_range(0..keyword_nodes.len())];
            b.add_fact(course, k, EdgeType::TaggedWith);
        }
    }
    // A few explicit curriculum links (e.g. AI -> deep learning -> NLP).
    let related_pairs = [
        (0usize, 3usize),
        (3, 4),
        (3, 10),
        (2, 5),
        (5, 7),
        (5, 6),
        (8, 2),
        (11, 17),
        (14, 15),
        (27, 17),
    ];
    for &(a, c) in &related_pairs {
        b.add_fact(courses[a], courses[c], EdgeType::RelatedTo);
    }
    let kg = b.build();
    // All courses are equally valuable to the campaign (the study maximises
    // the number of selected courses).
    let catalog = ItemCatalog::with_names(
        vec![1.0; COURSE_COUNT],
        course_names.iter().map(|s| s.to_string()).collect(),
    );
    (kg, catalog)
}

/// Generates the IMDPP instance of one class: dense friendship graph with the
/// Table III edge count, the shared course KG, and the paper's cost model
/// (out-degree over initial preference).  Budget and `T` default to the
/// study's `b = 50`, `T = 3`.
pub fn generate_class(spec: &ClassSpec) -> ImdppInstance {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.users;
    // Sample directed edges uniformly until the Table III edge count is hit.
    let max_edges = n * (n - 1);
    let target = spec.edges.min(max_edges);
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < target {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            chosen.insert((a as u32, b as u32));
        }
    }
    // The class graphs are dense (average degree ≈ 10–18), so individual
    // influence strengths and initial preferences are kept small enough that
    // a cascade stays sub-critical; otherwise every algorithm saturates the
    // class and the Fig. 12 comparison becomes meaningless.
    // Sort before assigning weights: `HashSet` iteration order varies per
    // process, and the weights are drawn sequentially from the seeded RNG,
    // so without sorting the same seed would give different graphs.
    let mut chosen: Vec<(u32, u32)> = chosen.into_iter().collect();
    chosen.sort_unstable();
    let edges: Vec<(UserId, UserId, f64)> = chosen
        .into_iter()
        .map(|(a, b)| (UserId(a), UserId(b), rng.gen_range(0.02..0.12)))
        .collect();
    let social = SocialGraph::from_influence_edges(n, edges, true);

    let (kg, catalog) = course_knowledge_graph(spec.seed ^ 0xC0FFEE);
    let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));
    let mut base_preferences = Vec::with_capacity(n * COURSE_COUNT);
    for _ in 0..n * COURSE_COUNT {
        base_preferences.push(rng.gen_range(0.05..0.5));
    }
    let scenario = Scenario::builder()
        .social(social)
        .catalog(catalog)
        .relevance(relevance)
        .base_preferences(base_preferences)
        .build()
        .expect("class scenario must be valid");
    let costs = CostModel::degree_over_preference(&scenario, 0.1);
    ImdppInstance::new(scenario, costs, 50.0, 3).expect("class instance must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_kg::stats::KgStats;

    #[test]
    fn table_three_sizes_are_reproduced() {
        for spec in ClassSpec::all() {
            let inst = generate_class(&spec);
            assert_eq!(
                inst.scenario().user_count(),
                spec.users,
                "class {}",
                spec.id
            );
            assert_eq!(
                inst.scenario().social().edge_count(),
                spec.edges,
                "class {}",
                spec.id
            );
            assert_eq!(inst.scenario().item_count(), COURSE_COUNT);
            assert_eq!(inst.budget(), 50.0);
            assert_eq!(inst.promotions(), 3);
        }
    }

    #[test]
    fn course_kg_covers_all_relationship_evidence() {
        let (kg, catalog) = course_knowledge_graph(1);
        assert_eq!(catalog.item_count(), COURSE_COUNT);
        let stats = KgStats::of(&kg);
        assert_eq!(stats.item_count, COURSE_COUNT);
        assert!(stats.node_type_count >= 4);
        assert!(stats.fact_count > COURSE_COUNT * 3);
        // AI and deep learning are complementary via the explicit curriculum link.
        let model = RelevanceModel::compute(&kg, MetaGraph::default_set());
        let r = model.base_relevance(
            imdpp_graph::ItemId(0),
            imdpp_graph::ItemId(3),
            imdpp_kg::RelationKind::Complementary,
        );
        assert!(r > 0.0);
    }

    #[test]
    fn classes_are_deterministic() {
        let a = generate_class(&ClassSpec::all()[0]);
        let b = generate_class(&ClassSpec::all()[0]);
        assert_eq!(
            a.scenario().social().edge_count(),
            b.scenario().social().edge_count()
        );
        assert_eq!(
            a.cost(UserId(0), imdpp_graph::ItemId(0)),
            b.cost(UserId(0), imdpp_graph::ItemId(0))
        );
    }

    #[test]
    fn python_and_cpp_are_substitutable_in_some_degree() {
        // The study observes python (8) and C++ (9) being treated as
        // substitutable; they share the "programming languages"-style field
        // grouping whenever i % fields aligns, and at minimum they must not be
        // strongly complementary.
        let (kg, _) = course_knowledge_graph(1);
        let model = RelevanceModel::compute(&kg, MetaGraph::default_set());
        let comp = model.base_relevance(
            imdpp_graph::ItemId(8),
            imdpp_graph::ItemId(9),
            imdpp_kg::RelationKind::Complementary,
        );
        assert!(comp < 0.6);
    }
}
