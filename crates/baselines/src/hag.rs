//! HAG (after Hung et al., "When social influence meets item inference"
//! \[37\]).
//!
//! Behavioural description used for the re-implementation: HAG "greedily
//! selects the most influential combination of user-item pairs as the
//! seeds, instead of the most influential user to promote a bundle of
//! items", which makes it more cost-effective than BGRD at small budgets,
//! but it neither examines the substitutable relationship nor exploits the
//! dynamics of perceptions.  Its combinatorial pair search also makes it the
//! slowest baseline at large budgets (Fig. 9(d)).  Timings are assigned with
//! CR-Greedy.

use crate::common::{Algorithm, BaselineConfig};
use crate::crgreedy::cr_greedy_timing;
use imdpp_core::{Evaluator, ImdppInstance, ItemId, Seed, SeedGroup, UserId};

/// The HAG baseline.
#[derive(Clone, Debug, Default)]
pub struct Hag {
    /// Shared baseline configuration.
    pub config: BaselineConfig,
}

impl Hag {
    /// Creates a HAG runner.
    pub fn new(config: BaselineConfig) -> Self {
        Hag { config }
    }
}

impl Algorithm for Hag {
    fn name(&self) -> &'static str {
        "HAG"
    }

    fn select(&self, instance: &ImdppInstance) -> SeedGroup {
        let evaluator = Evaluator::new(instance, self.config.mc_samples, self.config.base_seed);
        let users = crate::classic::candidate_users(instance, self.config.candidate_users);
        let pairs: Vec<(UserId, ItemId)> = users
            .iter()
            .flat_map(|&u| instance.scenario().items().map(move |x| (u, x)))
            .filter(|&(u, x)| instance.cost(u, x) <= instance.budget())
            .collect();

        // Greedy by raw marginal gain (not the cost-performance ratio), which
        // reproduces HAG's tendency to pick influential-but-expensive pairs.
        let mut selected: Vec<(UserId, ItemId)> = Vec::new();
        let mut group = SeedGroup::new();
        let mut spent = 0.0;
        let mut current = 0.0;
        loop {
            let mut best: Option<((UserId, ItemId), f64)> = None;
            for &(u, x) in &pairs {
                if group.contains_nominee(u, x) {
                    continue;
                }
                let cost = instance.cost(u, x);
                if cost > instance.budget() - spent {
                    continue;
                }
                let value = evaluator.spread(&group.with(Seed::new(u, x, 1)));
                let gain = value - current;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some(((u, x), gain));
                }
            }
            match best {
                Some(((u, x), gain)) if gain > 0.0 => {
                    spent += instance.cost(u, x);
                    current += gain;
                    group.insert(Seed::new(u, x, 1));
                    selected.push((u, x));
                }
                _ => break,
            }
        }
        cr_greedy_timing(instance, &selected, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn hag_is_feasible_and_nonempty() {
        let inst = instance(2.0, 2);
        let seeds = Hag::new(BaselineConfig::fast()).select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 2);
    }

    #[test]
    fn hag_can_mix_items_unlike_bgrd() {
        let inst = instance(2.0, 1);
        let seeds = Hag::new(BaselineConfig::fast()).select(&inst);
        // HAG can afford two pairs with budget 2 whereas BGRD needs 4 for a
        // bundle; it must therefore select something.
        assert!(!seeds.is_empty());
    }

    #[test]
    fn hag_prefers_high_importance_items_first() {
        let inst = instance(1.0, 1);
        let seeds = Hag::new(BaselineConfig::fast()).select(&inst);
        assert_eq!(seeds.len(), 1);
        // The single chosen item should be the high-importance iPhone (w=1.0)
        // rather than the cable (w=0.3).
        assert_ne!(seeds.items()[0], ItemId(3));
    }

    #[test]
    fn hag_name() {
        assert_eq!(Hag::default().name(), "HAG");
    }
}
