//! # imdpp-baselines
//!
//! The baseline algorithms the paper compares Dysim against (Sec. VI), plus
//! the brute-force optimum used on small instances and classic single-item
//! influence maximization:
//!
//! * [`opt`] — OPT: exhaustive search over feasible seed groups (Fig. 8),
//! * [`bgrd`] — BGRD \[38\]: utility-driven greedy that promotes all items as
//!   a bundle at the selected users,
//! * [`hag`] — HAG \[37\]: greedy over `(user, item)` pair combinations,
//! * [`ps`] — PS \[35\]: path-discounted per-seed estimation without marginal
//!   re-evaluation,
//! * [`drhga`] — DRHGA \[19\]: per-item user selection with dynamic
//!   preference awareness,
//! * [`crgreedy`] — the CR-Greedy \[39\] timing wrapper used to extend the
//!   single-promotion baselines to `T` promotions,
//! * [`classic`] — classic IM (greedy / CELF / degree / random) on a single
//!   item, used as building blocks and sanity baselines,
//! * [`ris`] — TIM/IMM-flavoured selection driven by the `imdpp-sketch`
//!   reverse-reachable oracle instead of forward Monte-Carlo.
//!
//! All baselines are re-implementations from the behavioural descriptions in
//! the paper (the original systems are not publicly available); DESIGN.md §3
//! documents the substitution.  Every baseline consumes an
//! [`imdpp_core::ImdppInstance`] and returns an [`imdpp_core::SeedGroup`]
//! that satisfies the budget.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bgrd;
pub mod classic;
pub mod common;
pub mod crgreedy;
pub mod drhga;
pub mod hag;
pub mod opt;
pub mod ps;
pub mod ris;

pub use bgrd::Bgrd;
pub use common::{Algorithm, BaselineConfig};
pub use crgreedy::cr_greedy_timing;
pub use drhga::Drhga;
pub use hag::Hag;
pub use opt::Opt;
pub use ps::PathScore;
pub use ris::{build_sketch_oracle, sketch_greedy_single_item, sketch_select_nominees};
