//! RIS-sketch baselines: TIM/IMM-flavoured selection driven by the
//! `imdpp-sketch` reverse-reachable oracle instead of forward Monte-Carlo.
//!
//! These are the "callers choose the estimator" entry points: the same MCP
//! selection machinery as [`imdpp_core::nominees`], but every `f(N)` query
//! is answered from the amortized RR-set pool.  On the static restricted
//! problem the selections agree with the Monte-Carlo greedy up to sampling
//! noise while being orders of magnitude cheaper per query.
//!
//! The full Dysim pipeline (not just these baselines) can also run
//! sketch-backed: set `DysimConfig::oracle` to `OracleKind::RrSketch` and
//! use the dispatching entry points in `imdpp_sketch::pipeline`.

use imdpp_core::nominees::{select_nominees_with_oracle, NomineeSelection, NomineeSelectionConfig};
use imdpp_core::{ImdppInstance, ItemId, Seed, SeedGroup};
use imdpp_sketch::{SketchConfig, SketchOracle};

/// Builds the RR-sketch oracle for an instance's static restricted problem.
pub fn build_sketch_oracle(instance: &ImdppInstance, config: SketchConfig) -> SketchOracle {
    SketchOracle::build(instance.scenario(), config)
}

/// MCP nominee selection (Procedure 2) answered by the sketch oracle — a
/// drop-in replacement for [`imdpp_core::nominees::select_nominees`].
pub fn sketch_select_nominees(
    instance: &ImdppInstance,
    oracle: &SketchOracle,
    universe: &[(imdpp_core::UserId, ItemId)],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    select_nominees_with_oracle(instance, oracle, universe, config)
}

/// TIM-style single-item baseline: budget-constrained greedy seeding of one
/// item, with marginal gains estimated from the RR sketch.  All chosen seeds
/// are placed in the first promotion.
pub fn sketch_greedy_single_item(
    instance: &ImdppInstance,
    item: ItemId,
    oracle: &SketchOracle,
) -> SeedGroup {
    let universe: Vec<_> = instance.scenario().users().map(|u| (u, item)).collect();
    let selection = select_nominees_with_oracle(
        instance,
        oracle,
        &universe,
        &NomineeSelectionConfig::default(),
    );
    selection
        .nominees
        .into_iter()
        .map(|(u, x)| Seed::new(u, x, 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::BaselineConfig;
    use imdpp_core::{CostModel, Evaluator, SpreadOracle, UserId};
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_diffusion::DynamicsConfig;

    fn instance(budget: f64) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, 1).unwrap()
    }

    #[test]
    fn sketch_selection_is_feasible_and_deterministic() {
        let inst = instance(2.0);
        let oracle = build_sketch_oracle(&inst, SketchConfig::fixed(512).with_base_seed(3));
        let a = sketch_greedy_single_item(&inst, ItemId(0), &oracle);
        let b = sketch_greedy_single_item(&inst, ItemId(0), &oracle);
        assert_eq!(a, b);
        assert!(inst.is_feasible(&a));
        assert_eq!(a.len(), 2);
        assert!(a
            .seeds()
            .iter()
            .all(|s| s.item == ItemId(0) && s.promotion == 1));
    }

    #[test]
    fn sketch_and_monte_carlo_selections_have_comparable_quality() {
        // Frozen instance so both estimators target the same static problem.
        let scenario = toy_scenario().with_dynamics(DynamicsConfig::frozen());
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        let inst = ImdppInstance::new(scenario, costs, 2.0, 1).unwrap();

        let oracle = build_sketch_oracle(&inst, SketchConfig::fixed(2048).with_base_seed(5));
        let sketch_seeds = sketch_greedy_single_item(&inst, ItemId(0), &oracle);
        let mc_seeds =
            crate::classic::greedy_single_item(&inst, ItemId(0), &BaselineConfig::fast());

        // Evaluate both seed groups with one reference Monte-Carlo estimator.
        let ev = Evaluator::new(&inst, 2_000, 99);
        let sketch_spread = ev.spread(&sketch_seeds);
        let mc_spread = ev.spread(&mc_seeds);
        assert!(
            (sketch_spread - mc_spread).abs() <= 0.05 * mc_spread.max(1.0),
            "sketch greedy {sketch_spread:.3} vs MC greedy {mc_spread:.3}"
        );
    }

    #[test]
    fn nominee_selection_through_the_oracle_respects_budget() {
        let inst = instance(3.0);
        let oracle = build_sketch_oracle(&inst, SketchConfig::fixed(256).with_base_seed(11));
        let universe = inst.nominee_universe(None);
        let sel = sketch_select_nominees(
            &inst,
            &oracle,
            &universe,
            &NomineeSelectionConfig::default(),
        );
        assert!(sel.total_cost <= inst.budget() + 1e-9);
        assert!(!sel.nominees.is_empty());
        assert!(sel.objective > 0.0);
        // The objective reported is the oracle's own estimate.
        assert!((sel.objective - oracle.static_spread(&sel.nominees)).abs() < 1e-12);
        // CELF through the sketch must not pick the sink user first.
        assert_ne!(sel.nominees[0].0, UserId(5));
    }
}
