//! CR-Greedy timing assignment (adapted from Sun et al., "Multi-round
//! influence maximization" \[39\]).
//!
//! The single-promotion baselines (BGRD, HAG, PS, DRHGA) produce a set of
//! `(user, item)` nominees; following the paper's experiment setup they are
//! augmented with CR-Greedy to "support multiple promotions and determine the
//! promotion timings".  CR-Greedy assigns each nominee, in the given order,
//! to the promotion with the largest marginal spread under the assignments
//! made so far.

use crate::common::BaselineConfig;
use imdpp_core::{Evaluator, ImdppInstance, ItemId, Seed, SeedGroup, UserId};

/// Assigns promotions `1..=T` to the given nominees greedily by marginal
/// spread (Monte-Carlo estimated).  The nominee order is preserved, which
/// lets each baseline keep its own selection priority.
pub fn cr_greedy_timing(
    instance: &ImdppInstance,
    nominees: &[(UserId, ItemId)],
    config: &BaselineConfig,
) -> SeedGroup {
    let evaluator = Evaluator::new(instance, config.mc_samples, config.base_seed);
    let promotions = instance.promotions();
    let mut assigned = SeedGroup::new();
    let mut current = 0.0;
    for &(u, x) in nominees {
        if assigned.contains_nominee(u, x) {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for t in 1..=promotions {
            let value = evaluator.spread(&assigned.with(Seed::new(u, x, t)));
            let gain = value - current;
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((t, gain));
            }
        }
        if let Some((t, gain)) = best {
            assigned.insert(Seed::new(u, x, t));
            current += gain;
        }
    }
    assigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 5.0, promotions).unwrap()
    }

    #[test]
    fn every_nominee_gets_exactly_one_timing() {
        let inst = instance(3);
        let nominees = vec![(UserId(0), ItemId(0)), (UserId(2), ItemId(1))];
        let seeds = cr_greedy_timing(&inst, &nominees, &BaselineConfig::fast());
        assert_eq!(seeds.len(), 2);
        for s in seeds.seeds() {
            assert!(s.promotion >= 1 && s.promotion <= 3);
        }
    }

    #[test]
    fn duplicate_nominees_are_assigned_once() {
        let inst = instance(2);
        let nominees = vec![(UserId(0), ItemId(0)), (UserId(0), ItemId(0))];
        let seeds = cr_greedy_timing(&inst, &nominees, &BaselineConfig::fast());
        assert_eq!(seeds.len(), 1);
    }

    #[test]
    fn single_promotion_assigns_everything_to_one() {
        let inst = instance(1);
        let nominees = vec![(UserId(0), ItemId(0)), (UserId(1), ItemId(1))];
        let seeds = cr_greedy_timing(&inst, &nominees, &BaselineConfig::fast());
        assert!(seeds.seeds().iter().all(|s| s.promotion == 1));
    }

    #[test]
    fn empty_nominee_list_gives_empty_group() {
        let inst = instance(2);
        let seeds = cr_greedy_timing(&inst, &[], &BaselineConfig::fast());
        assert!(seeds.is_empty());
    }
}
