//! Classic single-item influence maximization baselines (Kempe et al. style):
//! Monte-Carlo greedy / CELF, the high-degree heuristic and random seeding.
//!
//! These operate on one designated item and place every seed in the first
//! promotion; they serve as sanity baselines and as building blocks for the
//! multi-item baselines.

use crate::common::BaselineConfig;
use imdpp_core::{Evaluator, ImdppInstance, ItemId, Seed, SeedGroup, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Candidate seed users of an instance, optionally restricted to the
/// highest-out-degree users.  Only users with at least one affordable item
/// count toward the cap, so expensive hubs cannot crowd out every affordable
/// candidate under small budgets.
pub fn candidate_users(instance: &ImdppInstance, cap: Option<usize>) -> Vec<UserId> {
    let mut users: Vec<UserId> = instance.scenario().users().collect();
    users.sort_by_key(|u| std::cmp::Reverse(instance.scenario().social().out_degree(*u)));
    let cap = cap.unwrap_or(usize::MAX);
    let mut kept = Vec::new();
    for u in users {
        if kept.len() >= cap {
            break;
        }
        let affordable = instance
            .scenario()
            .items()
            .any(|x| instance.cost(u, x) <= instance.budget());
        if affordable || cap == usize::MAX {
            kept.push(u);
        }
    }
    kept
}

/// Greedy (CELF-free, for clarity) influence maximization for a single item:
/// repeatedly adds the affordable user with the highest marginal spread until
/// the budget is exhausted.
pub fn greedy_single_item(
    instance: &ImdppInstance,
    item: ItemId,
    config: &BaselineConfig,
) -> SeedGroup {
    let evaluator = Evaluator::new(instance, config.mc_samples, config.base_seed);
    let users = candidate_users(instance, config.candidate_users);
    let mut selected = SeedGroup::new();
    let mut spent = 0.0;
    let mut current = 0.0;
    loop {
        let mut best: Option<(UserId, f64)> = None;
        for &u in &users {
            if selected.contains_nominee(u, item) {
                continue;
            }
            let cost = instance.cost(u, item);
            if cost > instance.budget() - spent {
                continue;
            }
            let gain = evaluator.spread(&selected.with(Seed::new(u, item, 1))) - current;
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((u, gain));
            }
        }
        match best {
            Some((u, gain)) if gain > 0.0 => {
                spent += instance.cost(u, item);
                current += gain;
                selected.insert(Seed::new(u, item, 1));
            }
            _ => break,
        }
    }
    selected
}

/// High-degree heuristic: seeds the highest out-degree affordable users with
/// the given item until the budget runs out.
pub fn degree_heuristic(instance: &ImdppInstance, item: ItemId) -> SeedGroup {
    let users = candidate_users(instance, None);
    let mut selected = SeedGroup::new();
    let mut spent = 0.0;
    for u in users {
        let cost = instance.cost(u, item);
        if cost <= instance.budget() - spent {
            selected.insert(Seed::new(u, item, 1));
            spent += cost;
        }
    }
    selected
}

/// Random seeding baseline: picks affordable users uniformly at random.
pub fn random_seeds(instance: &ImdppInstance, item: ItemId, seed: u64) -> SeedGroup {
    let mut users: Vec<UserId> = instance.scenario().users().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    users.shuffle(&mut rng);
    let mut selected = SeedGroup::new();
    let mut spent = 0.0;
    for u in users {
        let cost = instance.cost(u, item);
        if cost <= instance.budget() - spent {
            selected.insert(Seed::new(u, item, 1));
            spent += cost;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, 1).unwrap()
    }

    #[test]
    fn candidate_users_are_sorted_by_degree() {
        let inst = instance(3.0);
        let users = candidate_users(&inst, Some(3));
        assert_eq!(users.len(), 3);
        // User 5 has out-degree 0 and cannot be in the top 3.
        assert!(!users.contains(&UserId(5)));
    }

    #[test]
    fn greedy_single_item_respects_budget() {
        let inst = instance(2.0);
        let g = greedy_single_item(&inst, ItemId(0), &BaselineConfig::fast());
        assert!(inst.is_feasible(&g));
        assert!(g.len() <= 2);
        assert!(!g.is_empty());
        assert!(g.items() == vec![ItemId(0)]);
    }

    #[test]
    fn degree_heuristic_fills_the_budget() {
        let inst = instance(3.0);
        let g = degree_heuristic(&inst, ItemId(1));
        assert_eq!(g.len(), 3);
        assert!(inst.is_feasible(&g));
    }

    #[test]
    fn random_seeds_are_feasible_and_deterministic_per_seed() {
        let inst = instance(2.0);
        let a = random_seeds(&inst, ItemId(0), 7);
        let b = random_seeds(&inst, ItemId(0), 7);
        assert_eq!(a, b);
        assert!(inst.is_feasible(&a));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn greedy_beats_random_on_average() {
        let inst = instance(1.0);
        let greedy = greedy_single_item(&inst, ItemId(0), &BaselineConfig::fast());
        let random = random_seeds(&inst, ItemId(0), 3);
        let ev = Evaluator::new(&inst, 64, 42);
        // Greedy should never be worse than a random pick by more than noise.
        assert!(ev.spread(&greedy) + 0.3 >= ev.spread(&random));
    }
}
