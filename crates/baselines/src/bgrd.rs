//! BGRD (after Banerjee, Chen & Lakshmanan, "Maximizing welfare in social
//! networks under a utility driven influence diffusion model" \[38\]).
//!
//! Behavioural description used for the re-implementation (Secs. II and
//! VI-B of the paper): BGRD selects influential *users* greedily by the
//! marginal welfare of the whole item set per unit cost and "regards all
//! items as a bundle to be promoted" at those users; it does not reason
//! about the substitutable relationship or about which item should go to
//! which user.  Promotional timings are assigned afterwards with CR-Greedy.

use crate::common::{Algorithm, BaselineConfig};
use crate::crgreedy::cr_greedy_timing;
use imdpp_core::{Evaluator, ImdppInstance, ItemId, Seed, SeedGroup, UserId};

/// The BGRD baseline.
#[derive(Clone, Debug, Default)]
pub struct Bgrd {
    /// Shared baseline configuration.
    pub config: BaselineConfig,
}

impl Bgrd {
    /// Creates a BGRD runner.
    pub fn new(config: BaselineConfig) -> Self {
        Bgrd { config }
    }

    /// The bundle BGRD places at a user: as many items as the remaining
    /// budget affords, filled in decreasing order of item importance (BGRD
    /// values the whole welfare of the bundle, so when the full catalogue
    /// does not fit it keeps the most valuable items).  Returns the items and
    /// their total cost; empty when not even one item is affordable.
    fn affordable_bundle(
        instance: &ImdppInstance,
        u: UserId,
        remaining_budget: f64,
    ) -> (Vec<ItemId>, f64) {
        let mut items: Vec<ItemId> = instance.scenario().items().collect();
        items.sort_by(|a, b| {
            instance
                .scenario()
                .catalog()
                .importance(*b)
                .partial_cmp(&instance.scenario().catalog().importance(*a))
                .unwrap()
        });
        let mut bundle = Vec::new();
        let mut cost = 0.0;
        for x in items {
            let c = instance.cost(u, x);
            if cost + c <= remaining_budget {
                bundle.push(x);
                cost += c;
            }
        }
        (bundle, cost)
    }

    /// Seeds for a set of `(user, bundle)` assignments, all in promotion 1.
    fn bundle_seeds(assignments: &[(UserId, Vec<ItemId>)]) -> SeedGroup {
        let mut g = SeedGroup::new();
        for (u, bundle) in assignments {
            for &x in bundle {
                g.insert(Seed::new(*u, x, 1));
            }
        }
        g
    }
}

impl Algorithm for Bgrd {
    fn name(&self) -> &'static str {
        "BGRD"
    }

    fn select(&self, instance: &ImdppInstance) -> SeedGroup {
        let evaluator = Evaluator::new(instance, self.config.mc_samples, self.config.base_seed);
        let candidates = crate::classic::candidate_users(instance, self.config.candidate_users);
        let mut assignments: Vec<(UserId, Vec<ItemId>)> = Vec::new();
        let mut spent = 0.0;
        let mut current = 0.0;
        loop {
            let remaining = instance.budget() - spent;
            let mut best: Option<(UserId, Vec<ItemId>, f64, f64, f64)> = None; // user, bundle, cost, gain, ratio
            for &u in &candidates {
                if assignments.iter().any(|(v, _)| *v == u) {
                    continue;
                }
                let (bundle, cost) = Self::affordable_bundle(instance, u, remaining);
                if bundle.is_empty() {
                    continue;
                }
                let mut with = assignments.clone();
                with.push((u, bundle.clone()));
                let value = evaluator.spread(&Self::bundle_seeds(&with));
                let gain = value - current;
                let ratio = gain / cost;
                if best.as_ref().is_none_or(|(_, _, _, _, r)| ratio > *r) {
                    best = Some((u, bundle, cost, gain, ratio));
                }
            }
            match best {
                Some((u, bundle, cost, gain, _)) if gain > 0.0 => {
                    spent += cost;
                    current += gain;
                    assignments.push((u, bundle));
                }
                _ => break,
            }
        }
        // Spread the bundles' (user, item) pairs over the T promotions.
        let nominees: Vec<(UserId, ItemId)> = assignments
            .iter()
            .flat_map(|(u, bundle)| bundle.iter().map(move |&x| (*u, x)))
            .collect();
        cr_greedy_timing(instance, &nominees, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn bgrd_selects_whole_bundles() {
        // Budget 4 = exactly one bundle of 4 items.
        let inst = instance(4.0, 2);
        let seeds = Bgrd::new(BaselineConfig::fast()).select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert_eq!(seeds.users().len(), 1);
        assert_eq!(seeds.items().len(), 4);
    }

    #[test]
    fn bgrd_with_tiny_budget_truncates_the_bundle_by_importance() {
        // A full bundle costs 4 > budget 2: BGRD keeps the two most important
        // items (iPhone 1.0 and wireless charger 0.8) at a single user.
        let inst = instance(2.0, 1);
        let seeds = Bgrd::new(BaselineConfig::fast()).select(&inst);
        assert_eq!(seeds.users().len(), 1);
        assert_eq!(seeds.items(), vec![ItemId(0), ItemId(2)]);
        assert!(inst.is_feasible(&seeds));
    }

    #[test]
    fn bgrd_respects_budget_with_two_bundles() {
        let inst = instance(8.0, 2);
        let seeds = Bgrd::new(BaselineConfig::fast()).select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert!(seeds.users().len() <= 2);
    }

    #[test]
    fn bgrd_name() {
        assert_eq!(Bgrd::default().name(), "BGRD");
    }
}
