//! DRHGA (after Huang, Meng & Shen, "Competitive and complementary influence
//! maximization in social network: a follower's perspective" \[19\]).
//!
//! Behavioural description used for the re-implementation: DRHGA models the
//! users' adopting probability of a promoted item as depending on previously
//! adopted complementary / substitutable items (dynamic preferences), and it
//! "is able to select appropriate users to promote each item, instead of
//! regarding all items as a bundle", but "does not choose items to be
//! promoted" — every item of the catalogue is promoted, with its own
//! greedy-selected users — and it does not reason about promotional timings
//! or the dynamics of perceptions and influence strengths.  Timings are
//! assigned with CR-Greedy.

use crate::common::{Algorithm, BaselineConfig};
use crate::crgreedy::cr_greedy_timing;
use imdpp_core::{Evaluator, ImdppInstance, ItemId, Seed, SeedGroup, UserId};

/// The DRHGA baseline.
#[derive(Clone, Debug, Default)]
pub struct Drhga {
    /// Shared baseline configuration.
    pub config: BaselineConfig,
}

impl Drhga {
    /// Creates a DRHGA runner.
    pub fn new(config: BaselineConfig) -> Self {
        Drhga { config }
    }
}

impl Algorithm for Drhga {
    fn name(&self) -> &'static str {
        "DRHGA"
    }

    fn select(&self, instance: &ImdppInstance) -> SeedGroup {
        let evaluator = Evaluator::new(instance, self.config.mc_samples, self.config.base_seed);
        let users = crate::classic::candidate_users(instance, self.config.candidate_users);
        let items: Vec<ItemId> = instance.scenario().items().collect();
        if items.is_empty() {
            return SeedGroup::new();
        }
        // DRHGA promotes every item of the catalogue and repeatedly selects
        // the best user *for each item* in a round-robin over the items (so
        // that every item gets some seeding before any item gets its second
        // seed), until no affordable user improves the spread.  The shared
        // budget is not pre-split across items.
        let mut selected: Vec<(UserId, ItemId)> = Vec::new();
        let mut total_spent = 0.0;
        let mut group = SeedGroup::new();
        let mut current = 0.0;
        loop {
            let mut added_this_round = false;
            for &x in &items {
                let mut best: Option<(UserId, f64, f64)> = None; // (user, gain, ratio)
                for &u in &users {
                    if group.contains_nominee(u, x) {
                        continue;
                    }
                    let cost = instance.cost(u, x);
                    if cost > instance.budget() - total_spent {
                        continue;
                    }
                    let value = evaluator.spread(&group.with(Seed::new(u, x, 1)));
                    let gain = value - current;
                    let ratio = gain / cost;
                    if best.is_none_or(|(_, _, r)| ratio > r) {
                        best = Some((u, gain, ratio));
                    }
                }
                if let Some((u, gain, _)) = best {
                    if gain > 0.0 {
                        let cost = instance.cost(u, x);
                        total_spent += cost;
                        current += gain;
                        group.insert(Seed::new(u, x, 1));
                        selected.push((u, x));
                        added_this_round = true;
                    }
                }
            }
            if !added_this_round {
                break;
            }
        }
        cr_greedy_timing(instance, &selected, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn drhga_is_feasible() {
        let inst = instance(4.0, 2);
        let seeds = Drhga::new(BaselineConfig::fast()).select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert!(!seeds.is_empty());
    }

    #[test]
    fn drhga_promotes_multiple_items_when_budget_allows() {
        let inst = instance(8.0, 2);
        let seeds = Drhga::new(BaselineConfig::fast()).select(&inst);
        assert!(seeds.items().len() >= 2);
    }

    #[test]
    fn drhga_selects_different_users_per_item() {
        let inst = instance(8.0, 2);
        let seeds = Drhga::new(BaselineConfig::fast()).select(&inst);
        // Unlike BGRD, DRHGA is free to pick different users for different
        // items; at minimum the selection must not be a single-user bundle of
        // every item unless that is genuinely optimal on this tiny graph.
        assert!(seeds.len() >= 2);
    }

    #[test]
    fn drhga_with_tiny_budget_still_respects_it() {
        let inst = instance(1.0, 1);
        let seeds = Drhga::new(BaselineConfig::fast()).select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert!(seeds.len() <= 1);
    }

    #[test]
    fn drhga_name() {
        assert_eq!(Drhga::default().name(), "DRHGA");
    }
}
