//! PS (after Teng et al., "Revenue maximization on the multi-grade product"
//! \[35\]).
//!
//! Behavioural description used for the re-implementation: PS "only
//! estimates the influence of a seed alone and cannot utilize the impact of
//! items from other promotions to find seeds"; it scores every `(user,
//! item)` pair with a *path-based* estimate (maximum-influence paths from
//! the user weighted by the reached users' preferences and the item's
//! importance), then selects pairs by a degree-discount style rule that
//! down-weights users already covered by earlier picks.  It never re-runs
//! Monte-Carlo marginals, which makes it fast but inaccurate, and it is
//! "less sensitive to b" because of the discounting (Sec. VI-B).

use crate::common::{Algorithm, BaselineConfig};
use crate::crgreedy::cr_greedy_timing;
use imdpp_core::{ImdppInstance, ItemId, SeedGroup, UserId};
use imdpp_graph::paths::max_influence_paths;
use std::collections::HashMap;

/// The PS baseline.
#[derive(Clone, Debug, Default)]
pub struct PathScore {
    /// Shared baseline configuration.
    pub config: BaselineConfig,
}

impl PathScore {
    /// Creates a PS runner.
    pub fn new(config: BaselineConfig) -> Self {
        PathScore { config }
    }

    /// Path-based influence score of seeding `(u, x)`: the sum over users `v`
    /// of the maximum-influence-path probability from `u` to `v`, times `v`'s
    /// initial preference for `x`, times the item importance.
    fn path_score(
        instance: &ImdppInstance,
        u: UserId,
        x: ItemId,
        reach_cache: &mut HashMap<u32, Vec<f64>>,
    ) -> f64 {
        let scenario = instance.scenario();
        let reach = reach_cache.entry(u.0).or_insert_with(|| {
            let paths = max_influence_paths(scenario.social().graph(), &[u]);
            scenario.users().map(|v| paths.probability(v)).collect()
        });
        let w = scenario.catalog().importance(x);
        scenario
            .users()
            .map(|v| reach[v.index()] * scenario.base_preference(v, x))
            .sum::<f64>()
            * w
    }
}

impl Algorithm for PathScore {
    fn name(&self) -> &'static str {
        "PS"
    }

    fn select(&self, instance: &ImdppInstance) -> SeedGroup {
        let users = crate::classic::candidate_users(instance, self.config.candidate_users);
        let scenario = instance.scenario();
        let mut reach_cache: HashMap<u32, Vec<f64>> = HashMap::new();

        // Score every affordable pair once.
        let mut scored: Vec<((UserId, ItemId), f64)> = Vec::new();
        for &u in &users {
            for x in scenario.items() {
                if instance.cost(u, x) > instance.budget() {
                    continue;
                }
                let s = Self::path_score(instance, u, x, &mut reach_cache);
                scored.push(((u, x), s));
            }
        }

        // Degree-discount style selection: coverage already claimed by chosen
        // seeds discounts later scores.
        let mut covered = vec![0.0f64; scenario.user_count()];
        let mut selected: Vec<(UserId, ItemId)> = Vec::new();
        let mut spent = 0.0;
        while !scored.is_empty() {
            let mut best: Option<(usize, f64)> = None;
            for (idx, &((u, x), base)) in scored.iter().enumerate() {
                if instance.cost(u, x) > instance.budget() - spent {
                    continue;
                }
                let reach = &reach_cache[&u.0];
                let discount: f64 = scenario
                    .users()
                    .map(|v| reach[v.index()] * covered[v.index()] * scenario.base_preference(v, x))
                    .sum();
                let score = base - discount * scenario.catalog().importance(x);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((idx, score));
                }
            }
            match best {
                Some((idx, score)) if score > 0.0 => {
                    let ((u, x), _) = scored.remove(idx);
                    spent += instance.cost(u, x);
                    let reach = reach_cache[&u.0].clone();
                    for v in scenario.users() {
                        covered[v.index()] = (covered[v.index()] + reach[v.index()]).min(1.0);
                    }
                    selected.push((u, x));
                }
                _ => break,
            }
        }
        cr_greedy_timing(instance, &selected, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn ps_is_feasible_and_nonempty() {
        let inst = instance(3.0, 2);
        let seeds = PathScore::new(BaselineConfig::fast()).select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert!(!seeds.is_empty());
    }

    #[test]
    fn ps_prefers_connected_users_over_isolated_ones() {
        let inst = instance(1.0, 1);
        let seeds = PathScore::new(BaselineConfig::fast()).select(&inst);
        assert_eq!(seeds.len(), 1);
        // User 5 has no out-edges: its path score is limited to itself, so a
        // connected user must win.
        assert_ne!(seeds.users()[0], UserId(5));
    }

    #[test]
    fn ps_prefers_important_items() {
        let inst = instance(1.0, 1);
        let seeds = PathScore::new(BaselineConfig::fast()).select(&inst);
        // iPhone (importance 1.0) dominates cable (0.3) for the same user.
        assert_eq!(seeds.items(), vec![ItemId(0)]);
    }

    #[test]
    fn ps_is_deterministic() {
        let inst = instance(3.0, 2);
        let a = PathScore::new(BaselineConfig::fast()).select(&inst);
        let b = PathScore::new(BaselineConfig::fast()).select(&inst);
        assert_eq!(a, b);
    }
}
