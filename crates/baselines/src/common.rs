//! Shared configuration and the common algorithm interface.

use imdpp_core::{ImdppInstance, SeedGroup};
use serde::{Deserialize, Serialize};

/// Configuration shared by all baseline algorithms.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Monte-Carlo samples per spread estimation.
    pub mc_samples: usize,
    /// Base random seed (estimates are deterministic per seed).
    pub base_seed: u64,
    /// Restrict candidate seed users to the that-many highest out-degree
    /// users (`None` = all users).
    pub candidate_users: Option<usize>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            mc_samples: 30,
            base_seed: 0xBA5E,
            candidate_users: Some(64),
        }
    }
}

impl BaselineConfig {
    /// A cheaper configuration for unit tests.
    pub fn fast() -> Self {
        BaselineConfig {
            mc_samples: 8,
            candidate_users: Some(16),
            ..Self::default()
        }
    }
}

/// The common interface of every seed-selection algorithm in this suite
/// (Dysim, the baselines and OPT), used by the experiment harness.
pub trait Algorithm {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;
    /// Selects a feasible seed group for the instance.
    fn select(&self, instance: &ImdppInstance) -> SeedGroup;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sensible() {
        let c = BaselineConfig::default();
        assert!(c.mc_samples >= 1);
        assert!(c.candidate_users.unwrap() > 0);
    }

    #[test]
    fn fast_config_uses_fewer_samples() {
        assert!(BaselineConfig::fast().mc_samples < BaselineConfig::default().mc_samples);
    }
}
