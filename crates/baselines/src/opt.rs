//! OPT: brute-force search over feasible seed groups, used on small
//! instances (the 100-user Amazon sample of Fig. 8) to measure how close
//! Dysim gets to the optimum.

use crate::common::{Algorithm, BaselineConfig};
use imdpp_core::{Evaluator, ImdppInstance, ItemId, Seed, SeedGroup, UserId};

/// Brute-force optimal seed selection.
///
/// The search enumerates every subset of the (optionally capped) nominee
/// universe up to `max_seeds` seeds, every assignment of promotions
/// `1..=T` to those seeds, prunes by the budget, and evaluates each feasible
/// group with Monte-Carlo.  Complexity is exponential; keep the universe
/// small (the experiments use ≤ 12 candidate pairs and ≤ 4 seeds).
#[derive(Clone, Debug)]
pub struct Opt {
    /// Shared baseline configuration.
    pub config: BaselineConfig,
    /// Maximum number of seeds per group (bounds the enumeration).
    pub max_seeds: usize,
    /// Maximum number of candidate `(user, item)` pairs considered; the
    /// highest-degree users' pairs are kept.
    pub max_candidates: usize,
}

impl Default for Opt {
    fn default() -> Self {
        Opt {
            config: BaselineConfig::default(),
            max_seeds: 4,
            max_candidates: 12,
        }
    }
}

impl Opt {
    /// Creates an OPT runner.
    pub fn new(config: BaselineConfig, max_seeds: usize, max_candidates: usize) -> Self {
        Opt {
            config,
            max_seeds,
            max_candidates,
        }
    }

    fn candidates(&self, instance: &ImdppInstance) -> Vec<(UserId, ItemId)> {
        let mut pairs = instance.nominee_universe(self.config.candidate_users);
        // Rank pairs by a cost-effectiveness proxy (importance-weighted
        // out-degree per unit cost) so that truncating to `max_candidates`
        // keeps the pairs an optimal solution would realistically use, not
        // just the most expensive hubs.
        let score = |&(u, x): &(UserId, ItemId)| -> f64 {
            let degree = instance.scenario().social().out_degree(u) as f64;
            let importance = instance.scenario().catalog().importance(x).max(1e-6);
            (1.0 + degree) * importance / instance.cost(u, x)
        };
        pairs.sort_by(|a, b| score(b).partial_cmp(&score(a)).unwrap());
        pairs.truncate(self.max_candidates);
        pairs
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        instance: &ImdppInstance,
        evaluator: &Evaluator<'_>,
        candidates: &[(UserId, ItemId)],
        start: usize,
        current: &mut Vec<Seed>,
        spent: f64,
        best: &mut (SeedGroup, f64),
    ) {
        // Evaluate the current group.
        if !current.is_empty() {
            let group = SeedGroup::from_seeds(current.clone());
            let value = evaluator.spread(&group);
            if value > best.1 {
                *best = (group, value);
            }
        }
        if current.len() >= self.max_seeds {
            return;
        }
        for idx in start..candidates.len() {
            let (u, x) = candidates[idx];
            let cost = instance.cost(u, x);
            if spent + cost > instance.budget() + 1e-9 {
                continue;
            }
            for t in 1..=instance.promotions() {
                current.push(Seed::new(u, x, t));
                self.search(
                    instance,
                    evaluator,
                    candidates,
                    idx + 1,
                    current,
                    spent + cost,
                    best,
                );
                current.pop();
            }
        }
    }
}

impl Algorithm for Opt {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn select(&self, instance: &ImdppInstance) -> SeedGroup {
        let evaluator = Evaluator::new(instance, self.config.mc_samples, self.config.base_seed);
        let candidates = self.candidates(instance);
        let mut best = (SeedGroup::new(), 0.0);
        let mut current = Vec::new();
        self.search(
            instance,
            &evaluator,
            &candidates,
            0,
            &mut current,
            0.0,
            &mut best,
        );
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::{CostModel, Dysim, DysimConfig};
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    fn opt() -> Opt {
        Opt::new(BaselineConfig::fast(), 2, 8)
    }

    #[test]
    fn opt_is_feasible_and_nonempty() {
        let inst = instance(2.0, 2);
        let seeds = opt().select(&inst);
        assert!(inst.is_feasible(&seeds));
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 2);
    }

    #[test]
    fn opt_uses_the_full_budget_when_beneficial() {
        let inst = instance(2.0, 1);
        let seeds = opt().select(&inst);
        // Two unit-cost seeds of the most important items should beat one.
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    fn opt_is_at_least_as_good_as_dysim_on_tiny_instances() {
        let inst = instance(2.0, 2);
        let opt_seeds = Opt::new(
            BaselineConfig {
                mc_samples: 32,
                ..BaselineConfig::fast()
            },
            2,
            10,
        )
        .select(&inst);
        let dysim_cfg = DysimConfig::fast();
        let dysim_ev = Evaluator::new(&inst, dysim_cfg.mc_samples, dysim_cfg.base_seed);
        let dysim_seeds = Dysim::new(dysim_cfg).solve_with(&inst, &dysim_ev).seeds;
        let ev = Evaluator::new(&inst, 128, 99);
        let opt_spread = ev.spread(&opt_seeds);
        let dysim_spread = ev.spread(&dysim_seeds);
        // Allow Monte-Carlo noise, but OPT must not lose clearly.
        assert!(
            opt_spread + 0.35 >= dysim_spread,
            "opt {opt_spread} vs dysim {dysim_spread}"
        );
    }

    #[test]
    fn opt_with_unaffordable_universe_returns_empty() {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 10.0);
        let inst = ImdppInstance::new(scenario, costs, 5.0, 1).unwrap();
        let seeds = opt().select(&inst);
        assert!(seeds.is_empty());
    }
}
