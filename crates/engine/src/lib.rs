//! # imdpp-engine
//!
//! The snapshot-isolated session façade of the IMDPP suite: one long-lived
//! [`Engine`] replaces the removed one-shot entry points (the `Dysim::run*`
//! family and `imdpp_sketch::pipeline`, deleted after their deprecation
//! cycle) with the shape a serving system needs — *build once, query many
//! times, refresh incrementally as the world drifts*.
//!
//! ## Snapshot isolation
//!
//! Internally the engine owns an immutable [`EngineSnapshot`] — the current
//! [`ImdppInstance`] plus the estimator resolved from
//! [`OracleKind`] — behind an [`Arc`] that is swapped atomically.  Any
//! number of reader threads can call [`Engine::spread`] /
//! [`Engine::solve`] (or pin an epoch explicitly with
//! [`Engine::snapshot`]) while a single writer applies a
//! [`ScenarioUpdate`] through [`Engine::apply`]:
//!
//! * readers never block on a refresh — the writer prepares the next
//!   snapshot *outside* the lock (incrementally, via
//!   [`RefreshableOracle::refresh`])
//!   and only the pointer swap is synchronized,
//! * every read observes a *consistent epoch*: scenario and sketch always
//!   match, never a torn intermediate (property-tested in
//!   `tests/engine_snapshot.rs`),
//! * sketch-backed engines refresh by re-sampling only the RR sets an
//!   update could have touched, and the refreshed snapshot is bit-identical
//!   to rebuilding from scratch against the drifted world.
//!
//! ## Maintained solutions
//!
//! Sketch-backed engines additionally keep the last solve's report alive
//! across applies (controlled by [`DysimConfig::maintain_bound`], on by
//! default): each [`Engine::apply`] intersects the refresh's touched users
//! with the cached greedy trace, re-runs CELF only from the first
//! invalidated position, and serves the repaired seed set from
//! [`Engine::solve`] while its sketch objective stays within the bound of a
//! fresh greedy run — falling back to a full pipeline re-solve otherwise.
//! Each apply reports what happened in [`ApplyReport::solve_repair`], and
//! the `engine.maintain.*` telemetry aggregates it.  See
//! `docs/ARCHITECTURE.md` ("Maintained solutions and the repair bound").
//!
//! ## Serving tier
//!
//! Three facilities turn the engine from a session into a server (see
//! `docs/ARCHITECTURE.md`, "Serving tier"):
//!
//! * [`SpreadBatch`] / [`Engine::static_spread_batch`] — many static-spread
//!   queries pinned to one epoch and answered in a single pass over the
//!   sharded RR store, decoding each arena once per batch instead of once
//!   per query; every answer is bit-identical to the single-query path,
//! * [`TenantOverlay`] / [`Engine::tenant`] — copy-on-write per-user
//!   perception overlays: N tenants share one base snapshot and each holds
//!   only the RR sets its preference deltas invalidated, yet every
//!   tenant-scoped estimate and solve is bit-identical to running N
//!   independent engines,
//! * [`Engine::persist`] / [`EngineBuilder::restore`] — warm restart: the
//!   sampled sketch, epoch counter and maintained solution round-trip
//!   through disk so a restarted process serves immediately, re-sampling
//!   zero RR sets.
//!
//! ## Observability
//!
//! Every engine carries an `imdpp-obs` [`Telemetry`] registry (live by
//! default; pass [`Telemetry::disabled`] to [`EngineBuilder::telemetry`]
//! for a one-branch no-op).  The hot paths record solve / spread /
//! static-spread / apply latencies, writer-queue wait, refresh and
//! epoch-swap durations, snapshot pins, and fold each apply's
//! [`RefreshStats`] into registry counters; the sketch behind an
//! [`OracleKind::RrSketch`] engine records its per-shard build / extend /
//! refresh wall-clock into the same registry.  Read it all back with
//! [`Engine::telemetry`].  Recording is write-only — it never feeds the RNG
//! or alters control flow, so seeds, estimates and refresh statistics stay
//! bit-identical with telemetry on, off, or sharded differently
//! (`tests/parallel_determinism.rs` asserts this across the grid).
//!
//! ## Example
//!
//! ```
//! use imdpp_diffusion::scenario::toy_scenario;
//! use imdpp_engine::Engine;
//! use imdpp_core::{EdgeUpdate, OracleKind, ScenarioUpdate, UserId};
//!
//! let engine = Engine::builder(toy_scenario())
//!     .budget(3.0)
//!     .promotions(2)
//!     .oracle(OracleKind::RrSketch { sets_per_item: 512, shards: 2, threads: 0 })
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! // Solve and query against epoch 0...
//! let seeds = engine.solve();
//! let sigma = engine.spread(&seeds);
//! assert!(sigma > 0.0);
//!
//! // ...then drift the world; the sketch refreshes incrementally and a new
//! // epoch is published atomically.
//! let update = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
//!     src: UserId(0),
//!     dst: UserId(1),
//!     weight: 0.9,
//! }]);
//! let applied = engine.apply(&update).unwrap();
//! assert_eq!(applied.epoch, 1);
//! assert!(!applied.was_empty); // a real update, so the fraction below is
//!                              // reuse at work, not a vacuous zero
//! assert!(applied.refresh_fraction < 1.0); // sample reuse, not a rebuild
//! assert_eq!(applied.refresh.full_rebuilds, 0); // index patched, not rebuilt
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use imdpp_core::adaptive::adaptive_dysim_with_oracle;
use imdpp_core::dysim::Dysim;
use imdpp_core::nominees::{Nominee, NomineeSelectionConfig};
use imdpp_core::oracle::SpreadOracle;
use imdpp_core::problem::{CostModel, ImdppInstance};
use imdpp_core::{Evaluator, RefreshableOracle};
use imdpp_diffusion::{DiffusionModel, Scenario, Seed, SeedGroup};
use imdpp_graph::{EdgeUpdate, UserId};
use imdpp_obs::{Counter, Gauge, Histogram};
use imdpp_sketch::maintain::repair_nominees;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

mod persist;
mod serve;

pub use serve::{SpreadBatch, TenantOverlay};

pub use imdpp_core::adaptive::AdaptiveReport;
pub use imdpp_core::dysim::{DysimConfig, DysimReport};
pub use imdpp_core::oracle::{OracleKind, RefreshStats, ScenarioUpdate};
pub use imdpp_diffusion::ImdppError;
pub use imdpp_obs::{Telemetry, TelemetrySnapshot};
pub use imdpp_sketch::dispatch::ConfiguredOracle;
pub use imdpp_sketch::maintain::RepairStats;

/// An immutable, internally consistent view of the engine's world at one
/// epoch: the instance (scenario + costs + budget + promotions), the
/// resolved estimator, and the driver configuration.
///
/// Snapshots are shared via [`Arc`]: grab one with [`Engine::snapshot`] to
/// pin an epoch across several queries; single calls on [`Engine`] pin it
/// implicitly for their duration.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    epoch: u64,
    instance: ImdppInstance,
    oracle: ConfiguredOracle,
    config: DysimConfig,
}

impl EngineSnapshot {
    /// The epoch counter: 0 at [`EngineBuilder::build`], +1 per applied
    /// update.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The instance at this epoch.
    pub fn instance(&self) -> &ImdppInstance {
        &self.instance
    }

    /// The scenario at this epoch.
    pub fn scenario(&self) -> &Scenario {
        self.instance.scenario()
    }

    /// The resolved `f(N)` estimator at this epoch.
    pub fn oracle(&self) -> &ConfiguredOracle {
        &self.oracle
    }

    /// The driver configuration the engine was built with.
    pub fn config(&self) -> &DysimConfig {
        &self.config
    }

    /// Runs the full Dysim pipeline (TMI → DRE → TDSI) against this epoch
    /// and returns the seed group with diagnostics.
    pub fn solve_report(&self) -> DysimReport {
        Dysim::new(self.config.clone()).solve_with(&self.instance, &self.oracle)
    }

    /// Estimates the importance-aware influence spread `σ(S)` of a seed
    /// group against this epoch (forward Monte-Carlo over the full
    /// campaign; deterministic for a fixed engine seed).
    pub fn spread(&self, seeds: &SeedGroup) -> f64 {
        Evaluator::new(
            &self.instance,
            self.config.mc_samples,
            self.config.base_seed,
        )
        .spread(seeds)
    }

    /// Estimates the static first-promotion spread `f(N)` of a nominee set
    /// with this epoch's configured oracle.
    pub fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        self.oracle.static_spread(nominees)
    }

    /// Answers many static-spread queries in one pass over this epoch's
    /// oracle: `results[q]` is bit-identical to
    /// `self.static_spread(queries[q])`, but sketch-backed snapshots decode
    /// each RR-set arena once for the whole batch instead of once per query
    /// (see [`crate::SpreadBatch`] for the engine-level API and the
    /// throughput gate in `benches/engine_concurrency.rs`).
    pub fn static_spread_batch(&self, queries: &[&[Nominee]]) -> Vec<f64> {
        self.oracle.static_spread_batch(queries)
    }
}

/// Outcome of one [`Engine::apply`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
#[must_use = "apply reports carry the epoch and refresh/repair counters tests pin; dropping one hides maintenance regressions"]
pub struct ApplyReport {
    /// The epoch of the snapshot the update produced.
    pub epoch: u64,
    /// Whether the applied update was empty (no preference changes, no edge
    /// updates).  An empty update publishes a new epoch without touching the
    /// estimator, so it also reports `refresh_fraction == 0.0` — this flag
    /// disambiguates that vacuous zero from a non-empty batch whose refresh
    /// genuinely resampled nothing (e.g. no-op edge reweights).
    pub was_empty: bool,
    /// Fraction of the estimator's internal state that had to be recomputed
    /// (`0.0` = everything reused, `1.0` = a full rebuild; sketch-backed
    /// engines report their RR-set resample fraction).  Always `0.0` when
    /// [`ApplyReport::was_empty`] is set — check that flag before reading a
    /// zero as "every sample was reused".
    pub refresh_fraction: f64,
    /// The full refresh instrumentation: resampled-set counters plus the
    /// inverted-index maintenance work (`index_entries_patched`,
    /// `full_rebuilds`).  Tests assert `full_rebuilds == 0` here so a
    /// regression to full-rebuild behaviour fails tests, not just benches.
    pub refresh: RefreshStats,
    /// Wall-clock of the estimator refresh, measured around the out-of-lock
    /// [`RefreshableOracle::refresh`] call (zero for empty updates, which
    /// refresh nothing).  Reported per update so callers get the dominant
    /// write-path cost without reading the full telemetry registry.
    pub refresh_wall: Duration,
    /// Wall-clock of publishing the new epoch: the write-lock acquisition
    /// plus the atomic snapshot-pointer swap.  This is the only interval in
    /// which readers can contend with the writer.
    pub swap_wall: Duration,
    /// What happened to the maintained solution under this update: how many
    /// greedy positions were retained verbatim, how many the CELF repair
    /// recomputed, and whether the update invalidated the cached solution
    /// entirely (forcing the next [`Engine::solve`] to run the full
    /// pipeline).  All-zero when no solution was cached at apply time or
    /// maintenance is disabled (see [`DysimConfig::maintain_bound`]).
    pub solve_repair: RepairStats,
}

/// The engine's pre-resolved telemetry handles: registered once at build so
/// the read and write paths never touch the registry lock.
#[derive(Debug)]
struct EngineMetrics {
    solve_ns: Histogram,
    spread_ns: Histogram,
    static_spread_ns: Histogram,
    batch_ns: Histogram,
    batch_size: Histogram,
    apply_ns: Histogram,
    refresh_ns: Histogram,
    swap_ns: Histogram,
    writer_wait_ns: Histogram,
    snapshot_pins: Counter,
    solves: Counter,
    spreads: Counter,
    static_spreads: Counter,
    batches: Counter,
    batch_queries: Counter,
    tenants: Counter,
    tenant_solves: Counter,
    tenant_spreads: Counter,
    applies: Counter,
    refresh_sets_total: Counter,
    refresh_sets_resampled: Counter,
    refresh_entries_patched: Counter,
    refresh_full_rebuilds: Counter,
    maintain_ns: Histogram,
    maintain_repairs: Counter,
    maintain_full_resolves: Counter,
    epoch: Gauge,
}

impl EngineMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        EngineMetrics {
            solve_ns: telemetry.histogram("engine.solve_ns"),
            spread_ns: telemetry.histogram("engine.spread_ns"),
            static_spread_ns: telemetry.histogram("engine.static_spread_ns"),
            batch_ns: telemetry.histogram("engine.batch_ns"),
            batch_size: telemetry.histogram("engine.batch.size"),
            apply_ns: telemetry.histogram("engine.apply_ns"),
            refresh_ns: telemetry.histogram("engine.refresh_ns"),
            swap_ns: telemetry.histogram("engine.swap_ns"),
            writer_wait_ns: telemetry.histogram("engine.writer_wait_ns"),
            snapshot_pins: telemetry.counter("engine.snapshot_pins"),
            solves: telemetry.counter("engine.solves"),
            spreads: telemetry.counter("engine.spreads"),
            static_spreads: telemetry.counter("engine.static_spreads"),
            batches: telemetry.counter("engine.batches"),
            batch_queries: telemetry.counter("engine.batch.queries"),
            tenants: telemetry.counter("engine.tenants"),
            tenant_solves: telemetry.counter("engine.tenant.solves"),
            tenant_spreads: telemetry.counter("engine.tenant.spreads"),
            applies: telemetry.counter("engine.applies"),
            refresh_sets_total: telemetry.counter("engine.refresh.sets_total"),
            refresh_sets_resampled: telemetry.counter("engine.refresh.sets_resampled"),
            refresh_entries_patched: telemetry.counter("engine.refresh.entries_patched"),
            refresh_full_rebuilds: telemetry.counter("engine.refresh.full_rebuilds"),
            maintain_ns: telemetry.histogram("engine.maintain_ns"),
            maintain_repairs: telemetry.counter("engine.maintain.repairs"),
            maintain_full_resolves: telemetry.counter("engine.maintain.full_resolves"),
            epoch: telemetry.gauge("engine.epoch"),
        }
    }
}

/// The maintained solution: the last solve's full report, valid for one
/// specific epoch.  [`Engine::solve_report`] serves it without re-running
/// the pipeline while it is current; [`Engine::apply`] repairs or
/// invalidates it as updates land (see [`DysimConfig::maintain_bound`]).
#[derive(Clone, Debug)]
struct MaintainedSolution {
    epoch: u64,
    report: DysimReport,
}

/// A long-lived, snapshot-isolated IMDPP session.
///
/// Build one with [`Engine::builder`] (from a scenario) or
/// [`Engine::for_instance`] (adopting an existing instance's costs, budget
/// and promotion count).  The engine is `Send + Sync`: share it behind an
/// `Arc` and call [`Engine::spread`] / [`Engine::solve`] from as many
/// threads as needed while one writer drives [`Engine::apply`].
#[derive(Debug)]
pub struct Engine {
    current: RwLock<Arc<EngineSnapshot>>,
    /// Serializes writers so concurrent `apply` calls cannot interleave
    /// their read-refresh-swap sequences (readers are never blocked by it).
    writer: Mutex<()>,
    /// The maintained solution cache (sketch-backed engines with
    /// [`DysimConfig::maintain_bound`] set).  Written by `solve_report`
    /// (priming after a full pipeline run) and by `apply` (repair /
    /// invalidation); both hold the lock only to read or install the entry,
    /// never across pipeline work.
    maintained: Mutex<Option<MaintainedSolution>>,
    /// The registry behind [`Engine::telemetry`]; the sketch (if any)
    /// records into the same registry through its own handles.
    telemetry: Telemetry,
    metrics: EngineMetrics,
}

impl Engine {
    /// Starts building an engine around a scenario.
    pub fn builder(scenario: Scenario) -> EngineBuilder {
        EngineBuilder {
            scenario,
            costs: None,
            budget: None,
            promotions: 1,
            config: DysimConfig::default(),
            telemetry: None,
        }
    }

    /// Starts building an engine that adopts `instance`'s scenario, costs,
    /// budget and promotion count (the migration path from the one-shot
    /// `run*` entry points, and what the experiments harness uses).
    pub fn for_instance(instance: &ImdppInstance) -> EngineBuilder {
        EngineBuilder {
            scenario: instance.scenario().clone(),
            costs: Some(instance.costs().clone()),
            budget: Some(instance.budget()),
            promotions: instance.promotions(),
            config: DysimConfig::default(),
            telemetry: None,
        }
    }

    /// The current snapshot.  Hold the returned [`Arc`] to keep answering
    /// queries against one consistent epoch while writers move on.
    ///
    /// Each call is counted as `engine.snapshot_pins` — the number of
    /// epochs handed out for *caller-held* pinning.  The engine's own query
    /// methods read the snapshot internally without recording a pin.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.metrics.snapshot_pins.incr();
        self.read_snapshot()
    }

    /// [`Engine::snapshot`] with poisoning surfaced as a typed error
    /// instead of silently recovered: returns [`ImdppError::Poisoned`] when
    /// a writer died holding the snapshot lock.  The engine's own read
    /// paths keep serving through a poisoned lock (every published value is
    /// whole — see the internal `read_snapshot`); use this variant when the
    /// caller wants to *know* a writer crashed, e.g. to quarantine the
    /// session instead of serving its last good epoch.
    pub fn try_snapshot(&self) -> Result<Arc<EngineSnapshot>, ImdppError> {
        let guard = self.current.read().map_err(|_| ImdppError::Poisoned {
            what: "snapshot lock",
        })?;
        self.metrics.snapshot_pins.incr();
        Ok(guard.clone())
    }

    /// The snapshot read every query path shares, off the pin counter's
    /// books (one lock round-trip + one `Arc` bump, nothing else).
    ///
    /// Recovers from a poisoned lock instead of panicking: the write guard
    /// only ever performs a whole-value `Arc` assignment (no user code runs
    /// while it is held), so even if a writer thread died the stored
    /// snapshot is a complete, internally consistent epoch — either the old
    /// pointer or the new one, never a torn value.  Readers must not
    /// propagate a panic they did not cause (`tests::
    /// poisoned_snapshot_lock_does_not_take_down_readers`).
    fn read_snapshot(&self) -> Arc<EngineSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// A point-in-time copy of every metric the engine (and, for
    /// sketch-backed engines, the sketch and its shard workers) has
    /// recorded.  Empty when the engine was built with
    /// [`Telemetry::disabled`].
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// The live registry itself — for sharing with other components or
    /// checking [`Telemetry::is_enabled`]; use [`Engine::telemetry`] to
    /// read values.
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current epoch (0-based; +1 per applied update).
    pub fn epoch(&self) -> u64 {
        self.read_snapshot().epoch
    }

    /// The driver configuration the engine was built with.
    pub fn config(&self) -> DysimConfig {
        self.read_snapshot().config.clone()
    }

    /// Solves against the current snapshot and returns the selected seed
    /// group — serving the maintained solution when one is valid for this
    /// epoch, running the full Dysim pipeline otherwise.
    pub fn solve(&self) -> SeedGroup {
        self.solve_report().seeds
    }

    /// Solves against the current snapshot and returns the seed group
    /// together with diagnostics.
    ///
    /// On a sketch-backed engine with [`DysimConfig::maintain_bound`] set,
    /// the first solve of each epoch runs the full pipeline and caches its
    /// report; subsequent solves at the same epoch serve the cached report,
    /// and [`Engine::apply`] repairs the cache across epochs so a solve
    /// after localized churn is typically a lookup, not a pipeline run.
    #[must_use = "the report carries the seeds and pipeline diagnostics; dropping it wastes the solve"]
    pub fn solve_report(&self) -> DysimReport {
        let snap = self.read_snapshot();
        self.metrics.solves.incr();
        let _span = self.metrics.solve_ns.start();
        if !self.maintenance_enabled(&snap) {
            return snap.solve_report();
        }
        // Recover rather than panic on poisoning: every holder of this
        // mutex (here and in `apply`) only reads or whole-value-assigns the
        // Option slot, so a panicked holder cannot have left it
        // mid-mutation — the cached entry is either intact or absent, and
        // both are safe to serve from.
        if let Some(m) = self
            .maintained
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
        {
            if m.epoch == snap.epoch {
                return m.report.clone();
            }
        }
        let report = snap.solve_report();
        if !report.nominees.is_empty() {
            // Same whole-value recovery argument as the read above.
            let mut slot = self
                .maintained
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // Never clobber an entry a concurrent `apply` repaired forward
            // to a newer epoch while this pipeline run was in flight.
            if slot.as_ref().is_none_or(|m| m.epoch <= snap.epoch) {
                *slot = Some(MaintainedSolution {
                    epoch: snap.epoch,
                    report: report.clone(),
                });
            }
        }
        report
    }

    /// Whether this engine maintains solutions across applies: a repair
    /// bound is configured and the oracle is the RR sketch (the repair
    /// invariant — untouched nominees keep bit-identical marginals — only
    /// holds for the sketch's exact coverage objective).
    fn maintenance_enabled(&self, snap: &EngineSnapshot) -> bool {
        snap.config.maintain_bound.is_some() && snap.oracle.as_sketch().is_some()
    }

    /// Estimates `σ(S)` for a seed group against the current snapshot.
    /// Safe to call from any number of threads concurrently with a writer.
    pub fn spread(&self, seeds: &SeedGroup) -> f64 {
        let snap = self.read_snapshot();
        self.metrics.spreads.incr();
        let _span = self.metrics.spread_ns.start();
        snap.spread(seeds)
    }

    /// Estimates the static first-promotion spread `f(N)` of a nominee set
    /// with the configured oracle against the current snapshot.
    pub fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        let snap = self.read_snapshot();
        self.metrics.static_spreads.incr();
        let _span = self.metrics.static_spread_ns.start();
        snap.static_spread(nominees)
    }

    /// Runs the adaptive Dysim loop (Sec. V-D) for `rounds` promotions
    /// against the current snapshot, applying `drift[i]` between promotions
    /// `i + 1` and `i + 2` *inside the simulation*.
    ///
    /// The drift is hypothetical: it migrates a private clone of the
    /// snapshot's oracle round by round and leaves the engine's published
    /// state untouched.  To make drift durable for subsequent queries, feed
    /// the same updates through [`Engine::apply`].
    pub fn adaptive(&self, rounds: u32, drift: &[ScenarioUpdate]) -> AdaptiveReport {
        let snap = self.read_snapshot();
        let instance = snap.instance.with_promotions(rounds);
        let mut oracle = snap.oracle.clone();
        adaptive_dysim_with_oracle(&instance, &snap.config, drift, &mut oracle)
    }

    /// Applies a world update and atomically publishes the refreshed
    /// snapshot as the next epoch.
    ///
    /// The heavy work — applying the update to the scenario and migrating
    /// the estimator through its incremental sample-reuse paths — happens
    /// outside the snapshot lock, so concurrent readers keep answering
    /// against the previous epoch and never observe a half-refreshed world.
    /// Sketch-backed engines re-sample only the RR sets the update could
    /// have touched; the published snapshot is bit-identical to one rebuilt
    /// from scratch against the drifted scenario.
    ///
    /// # Errors
    /// Returns an [`ImdppError`] (and publishes nothing) when the update
    /// references users or items outside the scenario or carries values
    /// outside their valid ranges, or [`ImdppError::Poisoned`] when a
    /// previous `apply` panicked mid-publish — the writer path refuses to
    /// build on possibly half-published state.
    pub fn apply(&self, update: &ScenarioUpdate) -> Result<ApplyReport, ImdppError> {
        let wait_span = self.metrics.writer_wait_ns.start();
        let _writer = self.writer.lock().map_err(|_| ImdppError::Poisoned {
            what: "engine writer lock",
        })?;
        drop(wait_span);
        let snap = self.read_snapshot();
        validate_update(snap.scenario(), update)?;
        let _apply_span = self.metrics.apply_ns.start();

        let epoch = snap.epoch + 1;
        let report = if update.is_empty() {
            // The world did not change, so a cached solution stays valid
            // verbatim: carry it to the new epoch.
            let solve_repair = {
                let mut slot = self.maintained.lock().map_err(|_| ImdppError::Poisoned {
                    what: "maintained-solution lock",
                })?;
                match slot.as_mut() {
                    Some(m) if m.epoch == snap.epoch => {
                        m.epoch = epoch;
                        RepairStats {
                            seeds_retained: m.report.nominees.len(),
                            positions_repaired: 0,
                            full_resolves: 0,
                        }
                    }
                    _ => RepairStats::default(),
                }
            };
            let next = Arc::new(EngineSnapshot {
                epoch,
                ..(*snap).clone()
            });
            // lint: allow(clock) — feeds the engine.swap_ns telemetry span
            // and ApplyReport::swap_wall; no algorithm reads it.
            let swap_started = Instant::now();
            *self.current.write().map_err(|_| ImdppError::Poisoned {
                what: "snapshot lock",
            })? = next;
            let swap_wall = swap_started.elapsed();
            self.metrics.swap_ns.record_duration(swap_wall);
            ApplyReport {
                epoch,
                was_empty: true,
                refresh_fraction: 0.0,
                refresh: RefreshStats::default(),
                refresh_wall: Duration::ZERO,
                swap_wall,
                solve_repair,
            }
        } else {
            let maintain_bound = snap.config.maintain_bound;
            let cached = if self.maintenance_enabled(&snap) {
                self.maintained
                    .lock()
                    .map_err(|_| ImdppError::Poisoned {
                        what: "maintained-solution lock",
                    })?
                    .as_ref()
                    .filter(|m| m.epoch == snap.epoch && !m.report.nominees.is_empty())
                    .cloned()
            } else {
                None
            };
            let updated = update.apply(snap.scenario());
            let mut oracle = snap.oracle.clone();
            // Refresh borrows `updated` before it moves into the instance,
            // so the writer path copies the scenario exactly once.  With a
            // cached solution to repair, the tracked variant additionally
            // reports the per-item touched users (same RefreshStats, same
            // refreshed state).
            // lint: allow(clock) — feeds the engine.refresh_ns telemetry
            // span and ApplyReport::refresh_wall; no algorithm reads it.
            let refresh_started = Instant::now();
            let (refresh, touched) = if cached.is_some() {
                oracle.refresh_tracked(&updated, update)
            } else {
                (oracle.refresh(&updated, update), None)
            };
            let refresh_wall = refresh_started.elapsed();
            self.metrics.refresh_ns.record_duration(refresh_wall);
            let instance = snap.instance.with_scenario(updated)?;
            let solve_repair = match (cached, maintain_bound) {
                (Some(cached), Some(bound)) => {
                    let _maintain_span = self.metrics.maintain_ns.start();
                    self.repair_maintained(
                        &instance,
                        &oracle,
                        &snap.config,
                        cached,
                        touched,
                        epoch,
                        bound,
                    )?
                }
                _ => RepairStats::default(),
            };
            let next = Arc::new(EngineSnapshot {
                epoch,
                instance,
                oracle,
                config: snap.config.clone(),
            });
            // lint: allow(clock) — feeds the engine.swap_ns telemetry span
            // and ApplyReport::swap_wall; no algorithm reads it.
            let swap_started = Instant::now();
            *self.current.write().map_err(|_| ImdppError::Poisoned {
                what: "snapshot lock",
            })? = next;
            let swap_wall = swap_started.elapsed();
            self.metrics.swap_ns.record_duration(swap_wall);
            self.metrics
                .refresh_sets_total
                .add(refresh.total_sets as u64);
            self.metrics
                .refresh_sets_resampled
                .add(refresh.resampled_sets as u64);
            self.metrics
                .refresh_entries_patched
                .add(refresh.index_entries_patched);
            self.metrics
                .refresh_full_rebuilds
                .add(refresh.full_rebuilds);
            ApplyReport {
                epoch,
                was_empty: false,
                refresh_fraction: refresh.resampled_fraction(),
                refresh,
                refresh_wall,
                swap_wall,
                solve_repair,
            }
        };
        self.metrics.applies.incr();
        self.metrics.epoch.set(epoch);
        Ok(report)
    }

    /// Repairs (or invalidates) the cached solution against the refreshed
    /// oracle and installs the outcome for `epoch`.  Called by `apply` with
    /// the writer lock held, before the new snapshot is published.
    ///
    /// # Errors
    /// [`ImdppError::Poisoned`] when the maintained-solution lock was
    /// poisoned by a panicked thread.
    #[allow(clippy::too_many_arguments)]
    fn repair_maintained(
        &self,
        instance: &ImdppInstance,
        oracle: &ConfiguredOracle,
        config: &DysimConfig,
        cached: MaintainedSolution,
        touched: Option<Vec<Vec<UserId>>>,
        epoch: u64,
        bound: f64,
    ) -> Result<RepairStats, ImdppError> {
        let invalidate = |stats: RepairStats| -> Result<RepairStats, ImdppError> {
            *self.maintained.lock().map_err(|_| ImdppError::Poisoned {
                what: "maintained-solution lock",
            })? = None;
            self.metrics.maintain_full_resolves.incr();
            Ok(stats)
        };
        let full_resolve = RepairStats {
            seeds_retained: 0,
            positions_repaired: 0,
            full_resolves: 1,
        };
        // Paranoid mode: a repair can only certify the *sketch* objective;
        // DRE/TDSI run Monte-Carlo against the drifted scenario and may
        // legitimately disagree even on an identical nominee set.  Under
        // `bound >= 1.0` ("serve nothing weaker than fresh, ever") the only
        // honest answer to a non-empty update is a full re-solve.
        if bound >= 1.0 {
            return invalidate(full_resolve);
        }
        let Some(touched) = touched else {
            // Tracking unavailable (non-sketch oracle slipped through):
            // nothing certifies the cache, so drop it.
            return invalidate(full_resolve);
        };
        let universe = instance.nominee_universe(config.candidate_users);
        let selection_config = NomineeSelectionConfig {
            max_nominees: config.max_nominees,
            stop_on_nonpositive_gain: true,
        };
        let outcome = repair_nominees(
            instance,
            oracle,
            &universe,
            &selection_config,
            &cached.report.nominees,
            &touched,
            bound,
        );
        if !outcome.kept {
            return invalidate(full_resolve);
        }
        let stats = RepairStats {
            seeds_retained: outcome.retained,
            positions_repaired: outcome.selection.nominees.len() - outcome.retained,
            full_resolves: 0,
        };
        let report = repaired_report(
            cached.report,
            &outcome.selection.nominees,
            outcome.retained,
            instance,
        );
        *self.maintained.lock().map_err(|_| ImdppError::Poisoned {
            what: "maintained-solution lock",
        })? = Some(MaintainedSolution { epoch, report });
        self.metrics.maintain_repairs.incr();
        Ok(stats)
    }
}

/// Splices a repaired nominee trace back into the cached report: seeds of
/// retained prefix nominees keep their TDSI-assigned timings, recomputed
/// tail nominees are seeded at the first promotion, and the total cost is
/// re-priced against the refreshed instance.  Markets, groups and the guard
/// flag carry over from the cached solve — the bound check already decided
/// the repaired set is close enough to fresh that re-deriving them is not
/// worth a Monte-Carlo pass.
fn repaired_report(
    cached: DysimReport,
    nominees: &[Nominee],
    retained: usize,
    instance: &ImdppInstance,
) -> DysimReport {
    let prefix = &nominees[..retained];
    let mut seeds = SeedGroup::new();
    for seed in cached.seeds.seeds() {
        if prefix.contains(&(seed.user, seed.item)) {
            seeds.insert(*seed);
        }
    }
    for &(u, x) in &nominees[retained..] {
        if !seeds.contains_nominee(u, x) {
            seeds.insert(Seed::new(u, x, 1));
        }
    }
    let total_cost = instance.total_cost(&seeds);
    DysimReport {
        nominees: nominees.to_vec(),
        seeds,
        total_cost,
        ..cached
    }
}

/// Rejects updates that would panic deeper in the stack (out-of-range ids
/// or probabilities) with a typed error instead.
fn validate_update(scenario: &Scenario, update: &ScenarioUpdate) -> Result<(), ImdppError> {
    let users = scenario.user_count();
    let items = scenario.item_count();
    match update {
        ScenarioUpdate::Preferences(changes) => {
            for &(u, x, p) in changes {
                if u.index() >= users {
                    return Err(ImdppError::invalid(format!(
                        "preference update references user {u} but the scenario has {users} users"
                    )));
                }
                if x.index() >= items {
                    return Err(ImdppError::invalid(format!(
                        "preference update references item {x} but the scenario has {items} items"
                    )));
                }
                if !(0.0..=1.0).contains(&p) {
                    return Err(ImdppError::OutOfRange {
                        name: "preference",
                        value: p,
                        min: 0.0,
                        max: 1.0,
                    });
                }
            }
        }
        ScenarioUpdate::Edges(updates) => {
            for up in updates {
                for endpoint in [up.src(), up.dst()] {
                    if endpoint.index() >= users {
                        return Err(ImdppError::invalid(format!(
                            "edge update references user {endpoint} but the scenario has \
                             {users} users"
                        )));
                    }
                }
                if let EdgeUpdate::Insert { weight, .. } | EdgeUpdate::Reweight { weight, .. } = up
                {
                    if !(0.0..=1.0).contains(weight) {
                        return Err(ImdppError::OutOfRange {
                            name: "influence strength",
                            value: *weight,
                            min: 0.0,
                            max: 1.0,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Builder for [`Engine`]; see [`Engine::builder`].
///
/// # Example
///
/// ```
/// use imdpp_core::{CostModel, ImdppError, OracleKind};
/// use imdpp_diffusion::scenario::toy_scenario;
/// use imdpp_engine::Engine;
///
/// let scenario = toy_scenario();
/// let costs = CostModel::degree_over_preference(&scenario, 0.2);
/// let engine = Engine::builder(scenario)
///     .costs(costs)
///     .budget(4.0)
///     .promotions(3)
///     .oracle(OracleKind::MonteCarlo)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(engine.epoch(), 0);
///
/// // The budget is the one component without a usable default:
/// let err = Engine::builder(toy_scenario()).build().unwrap_err();
/// assert!(matches!(err, ImdppError::MissingComponent { what: "budget" }));
/// ```
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    scenario: Scenario,
    costs: Option<CostModel>,
    budget: Option<f64>,
    promotions: u32,
    config: DysimConfig,
    telemetry: Option<Telemetry>,
}

impl EngineBuilder {
    /// Sets the hiring-cost model (default: uniform unit costs).
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Sets the total budget `b` (required).
    pub fn budget(mut self, budget: f64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the number of promotions `T` (default 1).
    pub fn promotions(mut self, promotions: u32) -> Self {
        self.promotions = promotions;
        self
    }

    /// Replaces the whole driver configuration (default:
    /// [`DysimConfig::default`]).  Call this *before* [`Self::oracle`] /
    /// [`Self::seed`], which tweak individual fields of it.
    pub fn config(mut self, config: DysimConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the estimator behind nominee selection's `f(N)` queries
    /// (default: [`OracleKind::MonteCarlo`]).
    pub fn oracle(mut self, oracle: OracleKind) -> Self {
        self.config.oracle = oracle;
        self
    }

    /// Sets the base random seed shared by the driver, the Monte-Carlo
    /// estimators and the sketch sampling streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.base_seed = seed;
        self
    }

    /// Sets the maintained-solution repair bound (shorthand for the
    /// [`DysimConfig::maintain_bound`] field; `None` disables maintenance,
    /// `Some(b >= 1.0)` is paranoid mode — every non-empty update forces
    /// the next solve to re-run the full pipeline).
    pub fn maintain_bound(mut self, bound: Option<f64>) -> Self {
        self.config.maintain_bound = bound;
        self
    }

    /// Replaces the telemetry registry (default: a fresh live
    /// [`Telemetry::new`]).  Pass [`Telemetry::disabled`] to strip the
    /// engine's instrumentation down to one branch per record site, or a
    /// shared registry to aggregate several engines into one snapshot.
    /// Telemetry never affects results — only whether timings and counters
    /// are collected.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Validates the configuration, resolves the oracle, and publishes
    /// epoch 0.
    ///
    /// # Errors
    /// [`ImdppError::MissingComponent`] when no budget was set;
    /// [`ImdppError::DimensionMismatch`] / [`ImdppError::InvalidConfig`]
    /// when the instance is inconsistent or the RR sketch is requested on a
    /// Linear Threshold scenario (the sketch encodes the Independent
    /// Cascade triggering distribution).
    pub fn build(self) -> Result<Engine, ImdppError> {
        let (instance, config, telemetry) = self.prepare()?;
        let oracle = ConfiguredOracle::build_with_telemetry(
            instance.scenario(),
            config.oracle,
            config.mc_samples,
            config.base_seed,
            &telemetry,
        );
        let metrics = EngineMetrics::new(&telemetry);
        Ok(Engine {
            current: RwLock::new(Arc::new(EngineSnapshot {
                epoch: 0,
                instance,
                oracle,
                config,
            })),
            writer: Mutex::new(()),
            maintained: Mutex::new(None),
            telemetry,
            metrics,
        })
    }

    /// The validation prelude [`EngineBuilder::build`] and
    /// [`EngineBuilder::restore`] share: resolves costs and budget into an
    /// instance, rejects the sketch-on-LT combination, and takes the
    /// telemetry registry out of the builder.
    fn prepare(self) -> Result<(ImdppInstance, DysimConfig, Telemetry), ImdppError> {
        let budget = self
            .budget
            .ok_or(ImdppError::MissingComponent { what: "budget" })?;
        let costs = self.costs.unwrap_or_else(|| {
            CostModel::uniform(self.scenario.user_count(), self.scenario.item_count(), 1.0)
        });
        let instance = ImdppInstance::new(self.scenario, costs, budget, self.promotions)?;
        if matches!(self.config.oracle, OracleKind::RrSketch { .. })
            && instance.scenario().model() != DiffusionModel::IndependentCascade
        {
            return Err(ImdppError::invalid(
                "the RR-sketch oracle requires the Independent Cascade model; \
                 use OracleKind::MonteCarlo for Linear Threshold scenarios",
            ));
        }
        let telemetry = self.telemetry.unwrap_or_default();
        Ok((instance, self.config, telemetry))
    }
}

// The whole point of the engine: it must be shareable across reader threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::{EdgeUpdate, ItemId, UserId};
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_sketch::{SketchConfig, SketchOracle};

    fn engine(oracle: OracleKind) -> Engine {
        Engine::builder(toy_scenario())
            .budget(3.0)
            .promotions(2)
            .config(DysimConfig::fast())
            .oracle(oracle)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_and_required_budget() {
        let err = Engine::builder(toy_scenario()).build().unwrap_err();
        assert!(matches!(
            err,
            ImdppError::MissingComponent { what: "budget" }
        ));

        let engine = Engine::builder(toy_scenario()).budget(2.0).build().unwrap();
        assert_eq!(engine.epoch(), 0);
        let snap = engine.snapshot();
        assert_eq!(snap.instance().budget(), 2.0);
        assert_eq!(snap.instance().promotions(), 1);
        // Default costs are uniform unit costs.
        assert_eq!(snap.instance().cost(UserId(0), ItemId(0)), 1.0);
    }

    #[test]
    fn builder_rejects_sketch_on_linear_threshold() {
        let lt = toy_scenario().with_model(DiffusionModel::LinearThreshold);
        let err = Engine::builder(lt)
            .budget(2.0)
            .oracle(OracleKind::RrSketch {
                sets_per_item: 64,
                shards: 1,
                threads: 0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ImdppError::InvalidConfig { .. }));
        assert!(err.to_string().contains("Independent Cascade"));
    }

    #[test]
    fn solve_matches_the_legacy_monte_carlo_run() {
        let engine = engine(OracleKind::MonteCarlo);
        let snap = engine.snapshot();
        let cfg = snap.config().clone();
        let ev = Evaluator::new(snap.instance(), cfg.mc_samples, cfg.base_seed);
        let legacy = Dysim::new(cfg).solve_with(snap.instance(), &ev);
        let report = engine.solve_report();
        assert_eq!(report.seeds, legacy.seeds);
        assert_eq!(report.nominees, legacy.nominees);
        assert_eq!(engine.solve(), legacy.seeds);
    }

    #[test]
    fn sketch_engine_solves_deterministically() {
        let a = engine(OracleKind::RrSketch {
            sets_per_item: 512,
            shards: 1,
            threads: 0,
        });
        let b = engine(OracleKind::RrSketch {
            sets_per_item: 512,
            shards: 1,
            threads: 0,
        });
        let seeds = a.solve();
        assert_eq!(seeds, b.solve());
        assert!(!seeds.is_empty());
        assert!(a.snapshot().instance().is_feasible(&seeds));
        assert!(a.spread(&seeds) > 0.0);
    }

    #[test]
    fn shard_count_does_not_change_the_solution() {
        let flat = engine(OracleKind::RrSketch {
            sets_per_item: 512,
            shards: 1,
            threads: 0,
        });
        let flat_report = flat.solve_report();
        let nominees = [(UserId(0), ItemId(0)), (UserId(2), ItemId(1))];
        for shards in [2usize, 4, 7] {
            let sharded = engine(OracleKind::RrSketch {
                sets_per_item: 512,
                shards,
                threads: 0,
            });
            let report = sharded.solve_report();
            assert_eq!(report.seeds, flat_report.seeds, "{shards} shards");
            assert_eq!(report.nominees, flat_report.nominees);
            assert_eq!(
                sharded.static_spread(&nominees),
                flat.static_spread(&nominees)
            );
        }
    }

    #[test]
    fn apply_advances_the_epoch_and_refreshes_incrementally() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 1,
            threads: 0,
        });
        let update = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.9,
        }]);
        let before = engine.snapshot();
        let applied = engine.apply(&update).unwrap();
        assert_eq!(applied.epoch, 1);
        assert!(!applied.was_empty);
        assert!(applied.refresh_fraction > 0.0 && applied.refresh_fraction < 1.0);
        // The refresh instrumentation: some sets re-sampled (index patched
        // accordingly), zero full index rebuilds.
        assert!(applied.refresh.resampled_sets > 0);
        assert!(applied.refresh.index_entries_patched > 0);
        assert_eq!(applied.refresh.full_rebuilds, 0);
        assert_eq!(
            applied.refresh.total_sets,
            256 * before.scenario().item_count()
        );
        assert_eq!(
            applied.refresh.resampled_fraction(),
            applied.refresh_fraction
        );
        assert_eq!(engine.epoch(), 1);

        // The pinned pre-update snapshot still answers against epoch 0.
        assert_eq!(
            before.scenario().social().influence(UserId(0), UserId(1)),
            0.6
        );
        assert_eq!(
            engine
                .snapshot()
                .scenario()
                .social()
                .influence(UserId(0), UserId(1)),
            0.9
        );
    }

    #[test]
    fn refreshed_snapshot_is_bit_identical_to_a_rebuild() {
        // Sharded on purpose: the refresh-equals-rebuild invariant (and the
        // zero-rebuild index maintenance) must hold through the façade for
        // any shard count.
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 3,
            threads: 0,
        });
        let updates = vec![
            ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]),
            ScenarioUpdate::Edges(vec![EdgeUpdate::Insert {
                src: UserId(5),
                dst: UserId(3),
                weight: 0.4,
            }]),
        ];
        for u in &updates {
            let applied = engine.apply(u).unwrap();
            assert_eq!(applied.refresh.full_rebuilds, 0);
        }
        let snap = engine.snapshot();
        let sketch = snap.oracle().as_sketch().unwrap();
        let rebuilt = SketchOracle::build(
            snap.scenario(),
            SketchConfig::fixed(256).with_base_seed(snap.config().base_seed),
        );
        // `stores_equal` compares global id order, so the flat rebuild is a
        // valid reference for the sharded refreshed sketch.
        assert!(sketch.stores_equal(&rebuilt));
        // Every full index build happened at construction: one per shard
        // per item, none during the applies.
        assert_eq!(
            sketch.index_stats().full_rebuilds,
            (3 * snap.scenario().item_count()) as u64
        );
    }

    #[test]
    fn empty_updates_publish_a_new_epoch_without_refreshing() {
        let engine = engine(OracleKind::MonteCarlo);
        let applied = engine.apply(&ScenarioUpdate::Edges(Vec::new())).unwrap();
        assert_eq!(applied.epoch, 1);
        assert!(applied.was_empty);
        assert_eq!(applied.refresh_fraction, 0.0);
        assert_eq!(applied.refresh, RefreshStats::default());
    }

    #[test]
    fn was_empty_disambiguates_the_two_zero_fraction_cases() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 128,
            shards: 2,
            threads: 0,
        });
        // An empty batch: zero fraction because there was nothing to do.
        let empty = engine
            .apply(&ScenarioUpdate::Preferences(Vec::new()))
            .unwrap();
        assert!(empty.was_empty);
        assert_eq!(empty.refresh_fraction, 0.0);
        // A non-empty batch that resamples nothing: re-setting the current
        // influence strength is a real update whose frontier is empty, so
        // the fraction is *also* 0.0 — only the flag tells them apart.
        let current = engine
            .snapshot()
            .scenario()
            .social()
            .influence(UserId(0), UserId(1));
        let noop = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: current,
        }]);
        let applied = engine.apply(&noop).unwrap();
        assert!(!applied.was_empty);
        assert_eq!(applied.refresh_fraction, 0.0);
        assert_eq!(applied.refresh.resampled_sets, 0);
        assert!(applied.refresh.total_sets > 0);
    }

    #[test]
    fn poisoned_snapshot_lock_does_not_take_down_readers() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 128,
            shards: 1,
            threads: 0,
        });
        let seeds = engine.solve();
        let sigma = engine.spread(&seeds);
        // Poison the snapshot lock: a writer dies while holding the write
        // guard.
        // lint: allow(spawn) — the regression needs a thread to panic
        // while holding the lock; determinism is not at stake.
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _guard = engine.current.write();
                panic!("simulated writer crash while holding the snapshot lock");
            });
            assert!(poisoner.join().is_err(), "the poisoner must have panicked");
        });
        assert!(engine.current.is_poisoned());

        // Readers recover: the stored snapshot is whole (the guard only
        // ever sees whole-value assignments), so queries keep serving the
        // last published epoch with identical answers.
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.solve(), seeds);
        assert_eq!(engine.spread(&seeds), sigma);

        // The typed-error surfaces report it instead of panicking: pinning
        // via try_snapshot and the writer path both refuse.
        assert!(matches!(
            engine.try_snapshot().unwrap_err(),
            ImdppError::Poisoned {
                what: "snapshot lock"
            }
        ));
        let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        assert!(matches!(
            engine.apply(&update).unwrap_err(),
            ImdppError::Poisoned { .. }
        ));
        assert_eq!(engine.epoch(), 0, "a refused apply publishes nothing");
    }

    #[test]
    fn poisoned_maintained_lock_recovers_on_the_solve_path() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 128,
            shards: 1,
            threads: 0,
        });
        let first = engine.solve_report();
        // lint: allow(spawn) — see the snapshot-lock regression above.
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _guard = engine.maintained.lock();
                panic!("simulated crash while holding the maintained lock");
            });
            assert!(poisoner.join().is_err());
        });
        // The cached entry is whole (holders only read or whole-value
        // assign), so the solve path recovers and keeps serving it.
        let served = engine.solve_report();
        assert_eq!(served.seeds, first.seeds);
        assert_eq!(served.nominees, first.nominees);
        // The writer path stays conservative: it reports the poisoning.
        let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        assert!(matches!(
            engine.apply(&update).unwrap_err(),
            ImdppError::Poisoned { .. }
        ));
    }

    #[test]
    fn invalid_updates_are_rejected_and_publish_nothing() {
        let engine = engine(OracleKind::MonteCarlo);
        let bad_user = ScenarioUpdate::Preferences(vec![(UserId(99), ItemId(0), 0.5)]);
        assert!(engine.apply(&bad_user).is_err());
        let bad_pref = ScenarioUpdate::Preferences(vec![(UserId(0), ItemId(0), 1.5)]);
        assert!(matches!(
            engine.apply(&bad_pref).unwrap_err(),
            ImdppError::OutOfRange { .. }
        ));
        let bad_edge = ScenarioUpdate::Edges(vec![EdgeUpdate::Insert {
            src: UserId(0),
            dst: UserId(42),
            weight: 0.3,
        }]);
        assert!(engine.apply(&bad_edge).is_err());
        let bad_weight = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 7.0,
        }]);
        assert!(engine.apply(&bad_weight).is_err());
        assert_eq!(engine.epoch(), 0, "failed updates must not advance epochs");
    }

    #[test]
    fn adaptive_matches_the_direct_adaptive_driver() {
        let drift = vec![
            ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.9,
            }]),
            ScenarioUpdate::Preferences(vec![(UserId(2), ItemId(0), 0.8)]),
        ];
        for oracle in [
            OracleKind::MonteCarlo,
            OracleKind::RrSketch {
                sets_per_item: 256,
                shards: 1,
                threads: 0,
            },
        ] {
            let engine = Engine::builder(toy_scenario())
                .budget(4.0)
                .promotions(3)
                .config(DysimConfig::fast())
                .oracle(oracle)
                .build()
                .unwrap();
            let report = engine.adaptive(3, &drift);
            let snap = engine.snapshot();
            let cfg = snap.config();
            let instance = snap.instance().with_promotions(3);
            let mut direct_oracle =
                ConfiguredOracle::build(snap.scenario(), cfg.oracle, cfg.mc_samples, cfg.base_seed);
            let direct = adaptive_dysim_with_oracle(&instance, cfg, &drift, &mut direct_oracle);
            assert_eq!(report.seeds, direct.seeds);
            assert_eq!(report.refresh_fractions, direct.refresh_fractions);
            // The engine's published state is untouched by hypothetical drift.
            assert_eq!(engine.epoch(), 0);
        }
    }

    #[test]
    fn telemetry_is_populated_after_solve_and_apply() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 3,
            threads: 0,
        });
        let seeds = engine.solve();
        let _sigma = engine.spread(&seeds);
        let _f = engine.static_spread(&[(UserId(0), ItemId(0))]);
        let update = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.9,
        }]);
        let applied = engine.apply(&update).unwrap();

        // Per-update wall-clock is reported without the registry...
        assert!(applied.refresh_wall > Duration::ZERO);
        assert!(
            applied.swap_wall < applied.refresh_wall + applied.swap_wall + Duration::from_secs(1)
        );

        // ...and the registry saw every path.
        let snap = engine.telemetry();
        for hist in [
            "engine.solve_ns",
            "engine.spread_ns",
            "engine.static_spread_ns",
            "engine.apply_ns",
            "engine.refresh_ns",
            "engine.swap_ns",
            "engine.writer_wait_ns",
        ] {
            let h = snap
                .histogram(hist)
                .unwrap_or_else(|| panic!("{hist} missing"));
            assert_eq!(h.count, 1, "{hist}");
        }
        assert!(snap.histogram("engine.solve_ns").unwrap().sum > 0);
        assert_eq!(snap.counter("engine.solves"), Some(1));
        assert_eq!(snap.counter("engine.spreads"), Some(1));
        assert_eq!(snap.counter("engine.static_spreads"), Some(1));
        assert_eq!(snap.counter("engine.applies"), Some(1));
        assert_eq!(snap.gauge("engine.epoch"), Some(1));
        // Pins count *explicit* `Engine::snapshot()` calls only; the four
        // query/apply calls above read their epoch off the books.
        assert_eq!(snap.counter("engine.snapshot_pins"), Some(0));

        // Counter totals match the returned RefreshStats exactly.
        assert_eq!(
            snap.counter("engine.refresh.sets_resampled"),
            Some(applied.refresh.resampled_sets as u64)
        );
        assert_eq!(
            snap.counter("engine.refresh.sets_total"),
            Some(applied.refresh.total_sets as u64)
        );
        assert_eq!(
            snap.counter("engine.refresh.entries_patched"),
            Some(applied.refresh.index_entries_patched)
        );
        assert_eq!(snap.counter("engine.refresh.full_rebuilds"), Some(0));

        // The sketch recorded into the same registry: one build observation
        // per shard per item at construction, one refresh observation per
        // shard per item at apply, and its resample counter agrees with the
        // engine-level fold.
        let items = engine.snapshot().scenario().item_count();
        assert_eq!(
            engine.telemetry().counter("engine.snapshot_pins"),
            Some(1),
            "an explicit snapshot() call is exactly one pin"
        );
        assert_eq!(
            snap.histogram("sketch.shard_build_ns").unwrap().count,
            (3 * items) as u64
        );
        assert_eq!(
            snap.histogram("sketch.shard_refresh_ns").unwrap().count,
            (3 * items) as u64
        );
        assert_eq!(
            snap.counter("sketch.sets_resampled"),
            Some(applied.refresh.resampled_sets as u64)
        );
        assert_eq!(
            snap.counter("sketch.sets_sampled"),
            Some((256 * items) as u64)
        );
        // Valid JSON comes out of the snapshot.
        let json = snap.to_json();
        assert!(json.contains("\"engine.applies\": 1"));
    }

    #[test]
    fn disabled_telemetry_snapshots_empty_and_changes_nothing() {
        let live = engine(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 2,
            threads: 0,
        });
        let dark = Engine::builder(toy_scenario())
            .budget(3.0)
            .promotions(2)
            .config(DysimConfig::fast())
            .oracle(OracleKind::RrSketch {
                sets_per_item: 256,
                shards: 2,
                threads: 0,
            })
            .telemetry(Telemetry::disabled())
            .build()
            .unwrap();
        assert!(!dark.telemetry_handle().is_enabled());
        assert!(live.telemetry_handle().is_enabled());

        // Identical results with recording on or off.
        assert_eq!(live.solve(), dark.solve());
        let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        let a = live.apply(&update).unwrap();
        let b = dark.apply(&update).unwrap();
        assert_eq!(a.refresh, b.refresh);

        // The dark engine recorded nothing.
        assert!(dark.telemetry().is_empty());
        assert!(!live.telemetry().is_empty());
    }

    #[test]
    fn maintained_solution_is_repaired_within_the_bound() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 2,
            threads: 0,
        });
        let first = engine.solve_report();
        assert!(!first.nominees.is_empty());
        let update = ScenarioUpdate::Preferences(vec![(UserId(5), ItemId(2), 0.4)]);
        let applied = engine.apply(&update).unwrap();
        let repair = applied.solve_repair;

        // The repair decision is mirrored exactly in telemetry.
        let snap = engine.telemetry();
        assert_eq!(
            snap.counter("engine.maintain.repairs"),
            Some(u64::from(repair.full_resolves == 0))
        );
        assert_eq!(
            snap.counter("engine.maintain.full_resolves"),
            Some(repair.full_resolves)
        );
        assert_eq!(snap.histogram("engine.maintain_ns").unwrap().count, 1);

        // Whatever `solve` serves now (maintained or re-solved) must sit
        // within the configured bound of a fresh pipeline run.
        let served = engine.solve_report();
        let fresh = engine.snapshot().solve_report();
        let bound = engine.config().maintain_bound.unwrap();
        assert!(
            engine.static_spread(&served.nominees) + 1e-9
                >= bound * engine.static_spread(&fresh.nominees)
        );
        assert!(engine.snapshot().instance().is_feasible(&served.seeds));
    }

    #[test]
    fn paranoid_bound_always_resolves_fully_and_matches_maintenance_off() {
        let build = |bound: Option<f64>| {
            Engine::builder(toy_scenario())
                .budget(3.0)
                .promotions(2)
                .config(DysimConfig::fast())
                .oracle(OracleKind::RrSketch {
                    sets_per_item: 256,
                    shards: 1,
                    threads: 0,
                })
                .maintain_bound(bound)
                .build()
                .unwrap()
        };
        let paranoid = build(Some(1.0));
        let off = build(None);
        assert_eq!(paranoid.solve_report().seeds, off.solve_report().seeds);
        let update = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.9,
        }]);
        let a = paranoid.apply(&update).unwrap();
        let b = off.apply(&update).unwrap();
        // Paranoid mode records the invalidation; maintenance-off engines
        // have nothing to invalidate.
        assert_eq!(
            a.solve_repair,
            RepairStats {
                seeds_retained: 0,
                positions_repaired: 0,
                full_resolves: 1
            }
        );
        assert_eq!(b.solve_repair, RepairStats::default());
        // Both re-run the full pipeline on the next solve: bit-identical.
        let pa = paranoid.solve_report();
        let off_report = off.solve_report();
        assert_eq!(pa.seeds, off_report.seeds);
        assert_eq!(pa.nominees, off_report.nominees);
    }

    #[test]
    fn empty_update_carries_the_maintained_solution_forward() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 1,
            threads: 0,
        });
        let first = engine.solve_report();
        let applied = engine.apply(&ScenarioUpdate::Edges(Vec::new())).unwrap();
        assert_eq!(
            applied.solve_repair,
            RepairStats {
                seeds_retained: first.nominees.len(),
                positions_repaired: 0,
                full_resolves: 0
            }
        );
        let served = engine.solve_report();
        assert_eq!(served.seeds, first.seeds);
        assert_eq!(served.nominees, first.nominees);
    }

    #[test]
    fn for_instance_adopts_costs_budget_and_promotions() {
        let scenario = toy_scenario();
        let costs = CostModel::degree_over_preference(&scenario, 0.2);
        let instance = ImdppInstance::new(scenario, costs, 4.0, 3).unwrap();
        let engine = Engine::for_instance(&instance).build().unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.instance().budget(), 4.0);
        assert_eq!(snap.instance().promotions(), 3);
        assert_eq!(
            snap.instance().cost(UserId(0), ItemId(0)),
            instance.cost(UserId(0), ItemId(0))
        );
    }

    #[test]
    fn static_spread_uses_the_configured_oracle() {
        let engine = engine(OracleKind::RrSketch {
            sets_per_item: 512,
            shards: 1,
            threads: 0,
        });
        let direct = SketchOracle::build(
            engine.snapshot().scenario(),
            SketchConfig::fixed(512).with_base_seed(engine.config().base_seed),
        );
        let nominees = [(UserId(0), ItemId(0))];
        assert_eq!(
            engine.static_spread(&nominees),
            direct.static_spread(&nominees)
        );
    }
}
