//! The serving tier's read-side façades: epoch-pinned query batches and
//! copy-on-write tenant overlays.
//!
//! Both are *views* over one [`EngineSnapshot`] — they add no locks and copy
//! no graph state, so any number of batches and tenants can be served
//! concurrently with the engine's single writer:
//!
//! * [`SpreadBatch`] pins one epoch and evaluates many static-spread queries
//!   in a single pass over the sharded RR store, decoding each compressed
//!   arena once per batch instead of once per query (the ≥2× throughput
//!   gate lives in `benches/engine_concurrency.rs`),
//! * [`TenantOverlay`] scopes queries and solves to one user's perception
//!   deltas without materializing a second engine: it holds only the RR
//!   sets those deltas invalidated (`O(deltas)`, not `O(graph)`), and every
//!   answer is bit-identical to an independent engine built on the tenant's
//!   scenario (`tests/serving_tier.rs` proves this across the shard grid).

use crate::{
    validate_update, ConfiguredOracle, DysimReport, Engine, EngineSnapshot, ImdppError,
    ScenarioUpdate,
};
use imdpp_core::dysim::Dysim;
use imdpp_core::nominees::Nominee;
use imdpp_core::problem::ImdppInstance;
use imdpp_core::{Evaluator, MonteCarloOracle, SpreadOracle};
use imdpp_diffusion::{Scenario, SeedGroup};
use imdpp_graph::{ItemId, UserId};
use imdpp_obs::{Counter, Histogram};
use imdpp_sketch::{PatchedSketch, SketchPatch};
use std::sync::Arc;

/// A batch of static-spread queries pinned to one engine epoch.
///
/// Build one with [`Engine::batch`], add queries with
/// [`SpreadBatch::push`], and answer them all with
/// [`SpreadBatch::evaluate`]: every query is evaluated against the *same*
/// snapshot (even if a writer publishes new epochs in between), and
/// `results[q]` is bit-identical to calling
/// [`EngineSnapshot::static_spread`] with `queries[q]` on that snapshot.
/// Sketch-backed engines answer the whole batch in one pass per item store,
/// decoding each compressed RR arena once instead of once per query — that
/// amortization is where the batched throughput win comes from.
#[derive(Clone, Debug)]
pub struct SpreadBatch {
    snapshot: Arc<EngineSnapshot>,
    queries: Vec<Vec<Nominee>>,
    batch_ns: Histogram,
    batch_size: Histogram,
    batches: Counter,
    batch_queries: Counter,
}

impl SpreadBatch {
    /// Adds one query (a nominee set) to the batch.
    pub fn push(&mut self, nominees: &[Nominee]) -> &mut Self {
        self.queries.push(nominees.to_vec());
        self
    }

    /// Number of queued queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are queued.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The epoch every query in this batch is answered against.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The pinned snapshot itself.
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// Answers every queued query in one pass and returns the spreads in
    /// push order.  The batch stays reusable — call again (or keep pushing)
    /// without re-pinning; the epoch never changes under it.
    pub fn evaluate(&self) -> Vec<f64> {
        self.batches.incr();
        self.batch_queries.add(self.queries.len() as u64);
        self.batch_size.record(self.queries.len() as u64);
        let _span = self.batch_ns.start();
        let refs: Vec<&[Nominee]> = self.queries.iter().map(|q| q.as_slice()).collect();
        self.snapshot.static_spread_batch(&refs)
    }
}

impl Engine {
    /// Starts an empty [`SpreadBatch`] pinned to the current epoch.
    ///
    /// Counts as one `engine.snapshot_pins` — the batch holds a caller-side
    /// epoch pin exactly like [`Engine::snapshot`] does.
    pub fn batch(&self) -> SpreadBatch {
        SpreadBatch {
            snapshot: self.snapshot(),
            queries: Vec::new(),
            batch_ns: self.metrics.batch_ns.clone(),
            batch_size: self.metrics.batch_size.clone(),
            batches: self.metrics.batches.clone(),
            batch_queries: self.metrics.batch_queries.clone(),
        }
    }

    /// Answers many static-spread queries against the current snapshot in
    /// one pass — the one-call form of [`Engine::batch`]: all queries see
    /// the same epoch, and `results[q]` is bit-identical to
    /// `self.static_spread(queries[q])` at that epoch.
    pub fn static_spread_batch(&self, queries: &[&[Nominee]]) -> Vec<f64> {
        let snap = self.read_snapshot();
        self.metrics.batches.incr();
        self.metrics.batch_queries.add(queries.len() as u64);
        self.metrics.batch_size.record(queries.len() as u64);
        let _span = self.metrics.batch_ns.start();
        snap.static_spread_batch(queries)
    }

    /// Creates a copy-on-write tenant overlay: a view of the current
    /// snapshot under per-user preference `deltas` (the paper's "dynamic
    /// personal perception", scoped to one tenant instead of published to
    /// everyone).
    ///
    /// The overlay holds the deltas plus — for sketch-backed engines — only
    /// the RR sets those deltas invalidated, resampled against the tenant's
    /// scenario.  Nothing else is copied: N tenants over one engine cost
    /// `O(Σ deltas)` extra memory, not `O(N × graph)`, yet every
    /// tenant-scoped estimate, marginal and solve is bit-identical to an
    /// independent engine built on the tenant's scenario.
    ///
    /// Duplicate `(user, item)` pairs resolve last-wins, matching what
    /// feeding the same list through [`Engine::apply`] would leave behind.
    ///
    /// # Errors
    /// The same validation as [`Engine::apply`]: out-of-range users, items
    /// or probabilities are rejected with a typed error.
    pub fn tenant(&self, deltas: &[(UserId, ItemId, f64)]) -> Result<TenantOverlay, ImdppError> {
        let snap = self.read_snapshot();
        validate_update(
            snap.scenario(),
            &ScenarioUpdate::Preferences(deltas.to_vec()),
        )?;
        let mut deduped = deltas.to_vec();
        // Stable sort: equal (user, item) keys keep their input order, so
        // the last entry of each run is the last write.
        deduped.sort_by_key(|&(u, x, _)| (u.0, x.0));
        let mut last_wins: Vec<(UserId, ItemId, f64)> = Vec::with_capacity(deduped.len());
        for d in deduped {
            match last_wins.last_mut() {
                Some(prev) if prev.0 == d.0 && prev.1 == d.1 => *prev = d,
                _ => last_wins.push(d),
            }
        }
        let patch = snap.oracle().as_sketch().map(|sketch| {
            let tenant_scenario = snap.scenario().with_base_preferences(&last_wins);
            let pairs: Vec<(UserId, ItemId)> = last_wins.iter().map(|&(u, x, _)| (u, x)).collect();
            SketchPatch::build(sketch, &tenant_scenario, &pairs)
        });
        self.metrics.tenants.incr();
        Ok(TenantOverlay {
            base: snap,
            deltas: last_wins,
            patch,
            tenant_solves: self.metrics.tenant_solves.clone(),
            tenant_spreads: self.metrics.tenant_spreads.clone(),
        })
    }
}

/// One tenant's copy-on-write view over a shared [`EngineSnapshot`].
///
/// At rest the overlay owns its preference deltas and (for sketch-backed
/// engines) a [`SketchPatch`] of the RR sets those deltas invalidated —
/// [`TenantOverlay::overlay_bytes`] reports exactly that footprint, and the
/// serving-tier memory gate compares it against N full engines.  Query
/// methods answer through the shared base arenas plus the patch;
/// [`TenantOverlay::solve_report`] and [`TenantOverlay::spread`]
/// materialize the tenant's scenario *transiently* for the duration of the
/// call (the Dysim pipeline and the Monte-Carlo evaluator need a concrete
/// scenario), then drop it — the at-rest footprint stays `O(deltas)`.
///
/// The overlay pins its base epoch: updates applied to the engine after
/// [`Engine::tenant`] do not leak in.  Build a fresh overlay to follow the
/// engine forward.
#[derive(Clone, Debug)]
pub struct TenantOverlay {
    base: Arc<EngineSnapshot>,
    deltas: Vec<(UserId, ItemId, f64)>,
    patch: Option<SketchPatch>,
    tenant_solves: Counter,
    tenant_spreads: Counter,
}

impl TenantOverlay {
    /// The epoch of the shared base snapshot this overlay pins.
    pub fn base_epoch(&self) -> u64 {
        self.base.epoch()
    }

    /// The tenant's preference deltas, deduplicated last-wins and sorted by
    /// `(user, item)`.
    pub fn deltas(&self) -> &[(UserId, ItemId, f64)] {
        &self.deltas
    }

    /// Number of base RR sets this tenant's patch replaced (0 for
    /// Monte-Carlo engines and for deltas that touched no sampled set).
    pub fn replaced_sets(&self) -> usize {
        self.patch.as_ref().map_or(0, SketchPatch::replaced_sets)
    }

    /// The overlay's own heap footprint in bytes: the delta list plus the
    /// patch.  This — not a second graph, not a second sketch — is what one
    /// extra tenant costs at rest.
    pub fn overlay_bytes(&self) -> u64 {
        let deltas = (self.deltas.capacity() * std::mem::size_of::<(UserId, ItemId, f64)>()) as u64;
        deltas + self.patch.as_ref().map_or(0, SketchPatch::heap_bytes)
    }

    /// The tenant's scenario, materialized on demand (base scenario with
    /// the deltas applied).  Transient by design — callers that need it
    /// repeatedly should hold the result, not the overlay.
    pub fn tenant_scenario(&self) -> Scenario {
        self.base.scenario().with_base_preferences(&self.deltas)
    }

    /// The tenant's instance, materialized on demand.
    fn materialize(&self) -> Result<ImdppInstance, ImdppError> {
        self.base.instance().with_scenario(self.tenant_scenario())
    }

    /// Estimates the static first-promotion spread `f(N)` under this
    /// tenant's perception — bit-identical to asking an independent engine
    /// built on [`TenantOverlay::tenant_scenario`].
    pub fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        match (self.base.oracle().as_sketch(), &self.patch) {
            (Some(sketch), Some(patch)) => {
                PatchedSketch::new(sketch, patch).static_spread(nominees)
            }
            _ => self.monte_carlo_oracle().static_spread(nominees),
        }
    }

    /// Answers many tenant-scoped static-spread queries; `results[q]` is
    /// bit-identical to `self.static_spread(queries[q])`.
    pub fn static_spread_batch(&self, queries: &[&[Nominee]]) -> Vec<f64> {
        match (self.base.oracle().as_sketch(), &self.patch) {
            (Some(sketch), Some(patch)) => {
                let view = PatchedSketch::new(sketch, patch);
                queries.iter().map(|q| view.static_spread(q)).collect()
            }
            _ => {
                let oracle = self.monte_carlo_oracle();
                queries.iter().map(|q| oracle.static_spread(q)).collect()
            }
        }
    }

    /// Runs the full Dysim pipeline under this tenant's perception and
    /// returns the seed group with diagnostics — bit-identical to
    /// [`EngineSnapshot::solve_report`] on an independent tenant engine.
    /// The tenant instance exists only for the duration of the call.
    ///
    /// # Errors
    /// Propagates instance-construction failures; with deltas validated at
    /// [`Engine::tenant`] time this does not occur in practice.
    pub fn solve_report(&self) -> Result<DysimReport, ImdppError> {
        self.tenant_solves.incr();
        let instance = self.materialize()?;
        let driver = Dysim::new(self.base.config().clone());
        Ok(match (self.base.oracle().as_sketch(), &self.patch) {
            (Some(sketch), Some(patch)) => {
                driver.solve_with(&instance, &PatchedSketch::new(sketch, patch))
            }
            _ => {
                let oracle = ConfiguredOracle::MonteCarlo(MonteCarloOracle::new(
                    instance.scenario(),
                    self.base.config().mc_samples,
                    self.base.config().base_seed,
                ));
                driver.solve_with(&instance, &oracle)
            }
        })
    }

    /// [`TenantOverlay::solve_report`] returning just the seed group.
    ///
    /// # Errors
    /// Same contract as [`TenantOverlay::solve_report`].
    pub fn solve(&self) -> Result<SeedGroup, ImdppError> {
        Ok(self.solve_report()?.seeds)
    }

    /// Estimates `σ(S)` of a seed group under this tenant's perception
    /// (forward Monte-Carlo over the transiently materialized tenant
    /// instance) — bit-identical to [`EngineSnapshot::spread`] on an
    /// independent tenant engine.
    ///
    /// # Errors
    /// Same contract as [`TenantOverlay::solve_report`].
    pub fn spread(&self, seeds: &SeedGroup) -> Result<f64, ImdppError> {
        self.tenant_spreads.incr();
        let instance = self.materialize()?;
        Ok(Evaluator::new(
            &instance,
            self.base.config().mc_samples,
            self.base.config().base_seed,
        )
        .spread(seeds))
    }

    /// The Monte-Carlo fallback oracle for non-sketch engines, built on the
    /// transient tenant scenario exactly as an independent engine's builder
    /// would.
    fn monte_carlo_oracle(&self) -> MonteCarloOracle {
        MonteCarloOracle::new(
            &self.tenant_scenario(),
            self.base.config().mc_samples,
            self.base.config().base_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DysimConfig, OracleKind};
    use imdpp_diffusion::scenario::toy_scenario;

    fn engine(oracle: OracleKind) -> Engine {
        Engine::builder(toy_scenario())
            .budget(3.0)
            .promotions(2)
            .config(DysimConfig::fast())
            .oracle(oracle)
            .build()
            .unwrap()
    }

    fn sketch_kind(shards: usize) -> OracleKind {
        OracleKind::RrSketch {
            sets_per_item: 192,
            shards,
            threads: 0,
        }
    }

    #[test]
    fn batch_answers_match_single_queries_and_pin_their_epoch() {
        let engine = engine(sketch_kind(2));
        let mut batch = engine.batch();
        assert!(batch.is_empty());
        let queries: Vec<Vec<Nominee>> = vec![
            vec![(UserId(0), ItemId(0))],
            vec![(UserId(2), ItemId(1)), (UserId(1), ItemId(2))],
            vec![],
            vec![(UserId(4), ItemId(2)), (UserId(0), ItemId(0))],
        ];
        for q in &queries {
            batch.push(q);
        }
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.epoch(), 0);
        let pinned = engine.snapshot();

        // Drift the engine *after* pinning; the batch must not notice.
        let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        let _ = engine.apply(&update).unwrap();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(batch.epoch(), 0);

        let results = batch.evaluate();
        for (q, nominees) in queries.iter().enumerate() {
            assert_eq!(
                results[q].to_bits(),
                pinned.static_spread(nominees).to_bits(),
                "query {q} must answer against the pinned epoch"
            );
        }

        // The convenience form answers against the *current* epoch.
        let refs: Vec<&[Nominee]> = queries.iter().map(|q| q.as_slice()).collect();
        let now = engine.static_spread_batch(&refs);
        let current = engine.snapshot();
        for (q, nominees) in queries.iter().enumerate() {
            assert_eq!(now[q].to_bits(), current.static_spread(nominees).to_bits());
        }
    }

    #[test]
    fn batch_telemetry_counts_batches_and_queries() {
        let engine = engine(sketch_kind(1));
        let mut batch = engine.batch();
        batch.push(&[(UserId(0), ItemId(0))]);
        batch.push(&[(UserId(2), ItemId(1))]);
        let _ = batch.evaluate();
        let _ = engine.static_spread_batch(&[&[(UserId(1), ItemId(2))]]);
        let snap = engine.telemetry();
        assert_eq!(snap.counter("engine.batches"), Some(2));
        assert_eq!(snap.counter("engine.batch.queries"), Some(3));
        assert_eq!(snap.histogram("engine.batch_ns").unwrap().count, 2);
        assert_eq!(snap.histogram("engine.batch.size").unwrap().count, 2);
        // Building the batch pinned one snapshot explicitly.
        assert_eq!(snap.counter("engine.snapshot_pins"), Some(1));
    }

    #[test]
    fn tenant_overlay_matches_an_independent_engine_bit_for_bit() {
        let deltas = vec![(UserId(1), ItemId(2), 0.9), (UserId(3), ItemId(0), 0.2)];
        for kind in [OracleKind::MonteCarlo, sketch_kind(1), sketch_kind(3)] {
            let base = engine(kind);
            let tenant = base.tenant(&deltas).unwrap();
            let independent =
                Engine::builder(base.snapshot().scenario().with_base_preferences(&deltas))
                    .budget(3.0)
                    .promotions(2)
                    .config(DysimConfig::fast())
                    .oracle(kind)
                    .build()
                    .unwrap();

            let probes: &[&[Nominee]] = &[
                &[(UserId(0), ItemId(0))],
                &[(UserId(1), ItemId(2)), (UserId(3), ItemId(0))],
                &[],
            ];
            for probe in probes {
                assert_eq!(
                    tenant.static_spread(probe).to_bits(),
                    independent.static_spread(probe).to_bits(),
                    "{kind:?}, probe {probe:?}"
                );
            }
            let batched = tenant.static_spread_batch(probes);
            for (q, probe) in probes.iter().enumerate() {
                assert_eq!(batched[q].to_bits(), tenant.static_spread(probe).to_bits());
            }

            let solved = tenant.solve_report().unwrap();
            let reference = independent.snapshot().solve_report();
            assert_eq!(solved.seeds, reference.seeds, "{kind:?}");
            assert_eq!(solved.nominees, reference.nominees, "{kind:?}");
            assert_eq!(
                tenant.spread(&solved.seeds).unwrap().to_bits(),
                independent.spread(&reference.seeds).to_bits(),
                "{kind:?}"
            );
            // The base engine itself is untouched by tenant work.
            assert_eq!(base.epoch(), 0);
            assert_eq!(tenant.base_epoch(), 0);
        }
    }

    #[test]
    fn tenant_deltas_dedupe_last_wins_and_validate() {
        let base = engine(sketch_kind(1));
        // Two writes to the same pair: only the second one survives, which
        // is exactly what apply()ing the list would leave behind.
        let tenant = base
            .tenant(&[
                (UserId(1), ItemId(2), 0.3),
                (UserId(2), ItemId(0), 0.5),
                (UserId(1), ItemId(2), 0.9),
            ])
            .unwrap();
        assert_eq!(
            tenant.deltas(),
            &[(UserId(1), ItemId(2), 0.9), (UserId(2), ItemId(0), 0.5)]
        );

        assert!(matches!(
            base.tenant(&[(UserId(99), ItemId(0), 0.5)]).unwrap_err(),
            ImdppError::InvalidConfig { .. }
        ));
        assert!(matches!(
            base.tenant(&[(UserId(0), ItemId(0), 1.5)]).unwrap_err(),
            ImdppError::OutOfRange { .. }
        ));
    }

    #[test]
    fn tenant_memory_is_deltas_not_graph() {
        let base = engine(sketch_kind(2));
        let total_sets = base.snapshot().oracle().as_sketch().unwrap().total_sets();
        let tenant = base.tenant(&[(UserId(1), ItemId(2), 0.9)]).unwrap();
        assert!(tenant.replaced_sets() > 0);
        assert!(tenant.overlay_bytes() > 0);
        // One tenant holds only the sets its delta invalidated — a strict
        // subset of one item's pool, not a second sketch.  (Byte-level
        // O(deltas) vs O(N × graph) is gated in tests/serving_tier.rs on an
        // instance big enough for compression constants not to dominate.)
        assert!(
            tenant.replaced_sets() < total_sets / 3,
            "replaced {} of {total_sets} sets",
            tenant.replaced_sets()
        );

        // A no-delta tenant serves pure base answers with an empty patch.
        let noop = base.tenant(&[]).unwrap();
        assert_eq!(noop.replaced_sets(), 0);
        let probe = [(UserId(0), ItemId(0))];
        assert_eq!(
            noop.static_spread(&probe).to_bits(),
            base.static_spread(&probe).to_bits()
        );

        let snap = base.telemetry();
        assert_eq!(snap.counter("engine.tenants"), Some(2));
    }
}
