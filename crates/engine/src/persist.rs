//! Warm restart: serializing an engine's sampled state to disk and
//! rebuilding a serving engine from it without re-sampling.
//!
//! [`Engine::persist`] writes, under the writer lock so the pair is
//! consistent, the three things a restarted process cannot cheaply
//! recompute: the **epoch counter**, the **RR sketch's sampled sets**
//! (byte-for-byte, via [`imdpp_sketch::persist`]'s checked codec), and the
//! **maintained solution** when one is valid for the persisted epoch.
//! Everything else — scenario, costs, budget, configuration — is supplied
//! again by the caller through the [`EngineBuilder`], exactly as at cold
//! start, and [`EngineBuilder::restore`] validates a fingerprint of it
//! against the file so a snapshot can never be grafted onto a different
//! world.
//!
//! The scenario is deliberately *not* persisted: the engine's contract is
//! that the sketch matches the scenario it was built against, so the caller
//! must hand `restore` the same (drifted) scenario that was current at
//! `persist` time.  The fingerprint (user/item counts, seed, oracle shape)
//! catches gross mismatches; semantic drift between persist and restore is
//! the caller's responsibility, just as it is for a cold build.
//!
//! Format (version 1, all integers LEB128, floats as `to_bits` LE):
//!
//! ```text
//! magic "IMDPPENG" | version | fingerprint | epoch
//! | oracle payload (sketch only: length-prefixed SketchOracle bytes)
//! | maintained flag | [DysimReport]
//! ```
//!
//! Versioning caveat: the format is intentionally strict — unknown
//! versions, trailing bytes, or any fingerprint mismatch fail with a typed
//! error rather than best-effort recovery.  A warm snapshot is an
//! optimization, never the source of truth; when in doubt, delete it and
//! cold-build.

use crate::{
    ConfiguredOracle, Engine, EngineBuilder, EngineMetrics, EngineSnapshot, ImdppError,
    MaintainedSolution, OracleKind,
};
use imdpp_core::dysim::DysimReport;
use imdpp_core::market::TargetMarket;
use imdpp_core::nominees::Nominee;
use imdpp_diffusion::{Seed, SeedGroup};
use imdpp_graph::{ItemId, UserId};
use imdpp_sketch::dispatch::sketch_config_for;
use imdpp_sketch::persist as codec;
use imdpp_sketch::SketchOracle;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// File magic: identifies an engine snapshot (the sketch payload inside has
/// its own internal validation).
const MAGIC: &[u8; 8] = b"IMDPPENG";
/// Current format version; bumped on any layout change, never reused.
const VERSION: u32 = 1;
/// Oracle tags inside the fingerprint.
const TAG_MONTE_CARLO: u32 = 0;
const TAG_RR_SKETCH: u32 = 1;

impl Engine {
    /// Serializes the engine's warm state — epoch, sampled sketch, and the
    /// maintained solution when it is current — to `path`, atomically with
    /// respect to writers (the writer lock is held while the state pair is
    /// captured, so a concurrent [`Engine::apply`] can never tear it).
    ///
    /// # Errors
    /// [`ImdppError::Io`] when the file cannot be written;
    /// [`ImdppError::Poisoned`] when a previous writer panicked — a
    /// possibly half-published engine must not be persisted.
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<(), ImdppError> {
        let _writer = self.writer.lock().map_err(|_| ImdppError::Poisoned {
            what: "engine writer lock",
        })?;
        let snap = self.read_snapshot();
        let maintained = self
            .maintained
            .lock()
            .map_err(|_| ImdppError::Poisoned {
                what: "maintained-solution lock",
            })?
            .clone();
        // Only a cache that is valid for the persisted epoch is worth
        // carrying across the restart; a stale one would be dropped by the
        // first solve anyway.
        let current_report = maintained
            .filter(|m| m.epoch == snap.epoch)
            .map(|m| m.report);
        let bytes = encode(&snap, current_report.as_ref());
        std::fs::write(path, bytes)?;
        Ok(())
    }
}

impl EngineBuilder {
    /// Builds an engine from a warm snapshot written by [`Engine::persist`]
    /// instead of sampling from scratch: the builder supplies the world
    /// (scenario, costs, budget, configuration — which must match what the
    /// persisting engine ran with), the file supplies the sampled sketch,
    /// the epoch, and the maintained solution.  The restored engine is
    /// bit-identical to the one that persisted — same estimates, same
    /// seeds, same epoch gauge — and re-samples **zero** RR sets getting
    /// there (`tests/engine_snapshot.rs` pins `sketch.sets_sampled == 0`).
    ///
    /// # Errors
    /// [`ImdppError::Io`] when the file cannot be read;
    /// [`ImdppError::InvalidConfig`] when the magic, version, or
    /// fingerprint disagrees with this builder, or the payload is truncated
    /// or corrupt; plus every error [`EngineBuilder::build`] can return.
    pub fn restore(self, path: impl AsRef<Path>) -> Result<Engine, ImdppError> {
        let bytes = std::fs::read(path)?;
        let (instance, config, telemetry) = self.prepare()?;

        let mut input = bytes.as_slice();
        let magic = codec::take(&mut input, MAGIC.len())?;
        if magic != MAGIC {
            return Err(codec::corrupt("not an engine snapshot (bad magic)"));
        }
        let version = codec::read_varint(&mut input)?;
        if version != VERSION {
            return Err(ImdppError::invalid(format!(
                "engine snapshot version {version} is not supported (expected {VERSION})"
            )));
        }
        let tag = check_fingerprint(&mut input, &instance, &config)?;

        let epoch = codec::read_varint64(&mut input)?;
        let oracle = match (config.oracle, tag) {
            (OracleKind::MonteCarlo, TAG_MONTE_CARLO) => {
                // The Monte-Carlo oracle has no sampled pool to restore —
                // rebuilding it from the scenario is already bit-identical.
                ConfiguredOracle::build_with_telemetry(
                    instance.scenario(),
                    config.oracle,
                    config.mc_samples,
                    config.base_seed,
                    &telemetry,
                )
            }
            (
                OracleKind::RrSketch {
                    sets_per_item,
                    shards,
                    threads,
                },
                TAG_RR_SKETCH,
            ) => {
                let len = codec::read_varint64(&mut input)? as usize;
                let payload = codec::take(&mut input, len)?;
                ConfiguredOracle::RrSketch(SketchOracle::deserialize(
                    instance.scenario(),
                    sketch_config_for(config.base_seed, sets_per_item, shards, threads),
                    &telemetry,
                    payload,
                )?)
            }
            // check_fingerprint already compared the tag against the
            // configured kind, so this arm is unreachable in practice.
            _ => {
                return Err(codec::corrupt(
                    "oracle tag disagrees with the configuration",
                ))
            }
        };

        let maintained = match codec::take(&mut input, 1)?[0] {
            0 => None,
            1 => Some(MaintainedSolution {
                epoch,
                report: decode_report(&mut input, &instance)?,
            }),
            _ => return Err(codec::corrupt("maintained-solution flag must be 0 or 1")),
        };
        if !input.is_empty() {
            return Err(codec::corrupt("trailing bytes after the engine snapshot"));
        }

        let metrics = EngineMetrics::new(&telemetry);
        metrics.epoch.set(epoch);
        Ok(Engine {
            current: RwLock::new(Arc::new(EngineSnapshot {
                epoch,
                instance,
                oracle,
                config,
            })),
            writer: Mutex::new(()),
            maintained: Mutex::new(maintained),
            telemetry,
            metrics,
        })
    }
}

/// Serializes the consistent (snapshot, maintained-report) pair `persist`
/// captured under the writer lock.
fn encode(snap: &EngineSnapshot, maintained: Option<&DysimReport>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    codec::write_varint(VERSION, &mut out);
    write_fingerprint(snap, &mut out);
    codec::write_varint64(snap.epoch, &mut out);
    if let Some(sketch) = snap.oracle.as_sketch() {
        let payload = sketch.serialize();
        codec::write_varint64(payload.len() as u64, &mut out);
        out.extend_from_slice(&payload);
    }
    match maintained {
        Some(report) => {
            out.push(1);
            encode_report(report, &mut out);
        }
        None => out.push(0),
    }
    out
}

/// The world-identity fields `restore` validates before trusting a payload.
fn write_fingerprint(snap: &EngineSnapshot, out: &mut Vec<u8>) {
    let scenario = snap.instance.scenario();
    codec::write_varint64(scenario.user_count() as u64, out);
    codec::write_varint64(scenario.item_count() as u64, out);
    codec::write_varint64(snap.config.base_seed, out);
    codec::write_varint64(snap.config.mc_samples as u64, out);
    codec::write_f64(snap.instance.budget(), out);
    codec::write_varint(snap.instance.promotions(), out);
    match snap.oracle.kind() {
        OracleKind::MonteCarlo => codec::write_varint(TAG_MONTE_CARLO, out),
        OracleKind::RrSketch {
            sets_per_item,
            shards,
            ..
        } => {
            codec::write_varint(TAG_RR_SKETCH, out);
            codec::write_varint64(sets_per_item as u64, out);
            // The resolved shard count (0 already clamped to 1), so a
            // persist/restore pair with `0` and `1` fingerprints equal.
            codec::write_varint64(shards as u64, out);
        }
    }
}

/// Validates the persisted fingerprint against the restoring builder's
/// world and returns the persisted oracle tag.
fn check_fingerprint(
    input: &mut &[u8],
    instance: &imdpp_core::problem::ImdppInstance,
    config: &imdpp_core::dysim::DysimConfig,
) -> Result<u32, ImdppError> {
    let scenario = instance.scenario();
    let mismatch = |what: &str| -> ImdppError {
        ImdppError::invalid(format!(
            "engine snapshot fingerprint mismatch: {what} differs from the builder's — \
             restore must be given the same world the snapshot was persisted from"
        ))
    };
    if codec::read_varint64(input)? != scenario.user_count() as u64 {
        return Err(mismatch("user count"));
    }
    if codec::read_varint64(input)? != scenario.item_count() as u64 {
        return Err(mismatch("item count"));
    }
    if codec::read_varint64(input)? != config.base_seed {
        return Err(mismatch("base seed"));
    }
    if codec::read_varint64(input)? != config.mc_samples as u64 {
        return Err(mismatch("mc_samples"));
    }
    if codec::read_f64(input)?.to_bits() != instance.budget().to_bits() {
        return Err(mismatch("budget"));
    }
    if codec::read_varint(input)? != instance.promotions() {
        return Err(mismatch("promotion count"));
    }
    let tag = codec::read_varint(input)?;
    match config.oracle {
        OracleKind::MonteCarlo => {
            if tag != TAG_MONTE_CARLO {
                return Err(mismatch("oracle kind"));
            }
        }
        OracleKind::RrSketch {
            sets_per_item,
            shards,
            ..
        } => {
            if tag != TAG_RR_SKETCH {
                return Err(mismatch("oracle kind"));
            }
            if codec::read_varint64(input)? != sets_per_item as u64 {
                return Err(mismatch("sets per item"));
            }
            if codec::read_varint64(input)? != shards.max(1) as u64 {
                return Err(mismatch("shard count"));
            }
        }
    }
    Ok(tag)
}

fn encode_nominees(nominees: &[Nominee], out: &mut Vec<u8>) {
    codec::write_varint64(nominees.len() as u64, out);
    for &(u, x) in nominees {
        codec::write_varint(u.0, out);
        codec::write_varint(x.0, out);
    }
}

fn decode_nominees(
    input: &mut &[u8],
    users: usize,
    items: usize,
) -> Result<Vec<Nominee>, ImdppError> {
    let count = codec::read_varint64(input)? as usize;
    let mut nominees = Vec::with_capacity(count.min(users.saturating_mul(items)));
    for _ in 0..count {
        let u = codec::read_varint(input)?;
        let x = codec::read_varint(input)?;
        if (u as usize) >= users || (x as usize) >= items {
            return Err(codec::corrupt("persisted nominee is out of range"));
        }
        nominees.push((UserId(u), ItemId(x)));
    }
    Ok(nominees)
}

fn encode_users(users: &[UserId], out: &mut Vec<u8>) {
    codec::write_varint64(users.len() as u64, out);
    for u in users {
        codec::write_varint(u.0, out);
    }
}

fn decode_users(input: &mut &[u8], user_count: usize) -> Result<Vec<UserId>, ImdppError> {
    let count = codec::read_varint64(input)? as usize;
    let mut users = Vec::with_capacity(count.min(user_count));
    for _ in 0..count {
        let u = codec::read_varint(input)?;
        if (u as usize) >= user_count {
            return Err(codec::corrupt("persisted market user is out of range"));
        }
        users.push(UserId(u));
    }
    Ok(users)
}

/// Serializes a [`DysimReport`] field by field, in declaration order.
fn encode_report(report: &DysimReport, out: &mut Vec<u8>) {
    let seeds = report.seeds.seeds();
    codec::write_varint64(seeds.len() as u64, out);
    for seed in seeds {
        codec::write_varint(seed.user.0, out);
        codec::write_varint(seed.item.0, out);
        codec::write_varint(seed.promotion, out);
    }
    encode_nominees(&report.nominees, out);
    codec::write_varint64(report.markets.len() as u64, out);
    for market in &report.markets {
        codec::write_varint64(market.index as u64, out);
        codec::write_varint(market.diameter, out);
        encode_nominees(&market.nominees, out);
        encode_users(&market.users, out);
    }
    codec::write_varint64(report.groups.len() as u64, out);
    for group in &report.groups {
        codec::write_varint64(group.len() as u64, out);
        for &m in group {
            codec::write_varint64(m as u64, out);
        }
    }
    codec::write_f64(report.total_cost, out);
    out.push(u8::from(report.guard_solution_used));
}

/// Decodes [`encode_report`] output, validating every id against the
/// restoring instance so a corrupt file fails typed instead of panicking
/// downstream.
fn decode_report(
    input: &mut &[u8],
    instance: &imdpp_core::problem::ImdppInstance,
) -> Result<DysimReport, ImdppError> {
    let users = instance.scenario().user_count();
    let items = instance.scenario().item_count();
    let seed_count = codec::read_varint64(input)? as usize;
    // Seeds are re-inserted in serialized order: `SeedGroup::insert`
    // appends, so the restored group is element-for-element identical to
    // the persisted one (equality includes order).
    let mut seeds = SeedGroup::new();
    for _ in 0..seed_count {
        let u = codec::read_varint(input)?;
        let x = codec::read_varint(input)?;
        let promotion = codec::read_varint(input)?;
        if (u as usize) >= users || (x as usize) >= items {
            return Err(codec::corrupt("persisted seed is out of range"));
        }
        if promotion < 1 || promotion > instance.promotions() {
            return Err(codec::corrupt("persisted seed promotion is out of range"));
        }
        seeds.insert(Seed::new(UserId(u), ItemId(x), promotion));
    }
    let nominees = decode_nominees(input, users, items)?;
    let market_count = codec::read_varint64(input)? as usize;
    let mut markets = Vec::with_capacity(market_count.min(users));
    for _ in 0..market_count {
        let index = codec::read_varint64(input)? as usize;
        let diameter = codec::read_varint(input)?;
        let market_nominees = decode_nominees(input, users, items)?;
        let market_users = decode_users(input, users)?;
        markets.push(TargetMarket {
            index,
            nominees: market_nominees,
            users: market_users,
            diameter,
        });
    }
    let group_count = codec::read_varint64(input)? as usize;
    let mut groups = Vec::with_capacity(group_count.min(markets.len() + 1));
    for _ in 0..group_count {
        let len = codec::read_varint64(input)? as usize;
        let mut group = Vec::with_capacity(len.min(markets.len() + 1));
        for _ in 0..len {
            let m = codec::read_varint64(input)? as usize;
            if m >= markets.len() {
                return Err(codec::corrupt(
                    "persisted group references a missing market",
                ));
            }
            group.push(m);
        }
        groups.push(group);
    }
    let total_cost = codec::read_f64(input)?;
    let guard_solution_used = match codec::take(input, 1)?[0] {
        0 => false,
        1 => true,
        _ => return Err(codec::corrupt("guard-solution flag must be 0 or 1")),
    };
    Ok(DysimReport {
        seeds,
        nominees,
        markets,
        groups,
        total_cost,
        guard_solution_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DysimConfig, Engine};
    use imdpp_core::ScenarioUpdate;
    use imdpp_diffusion::scenario::toy_scenario;

    fn builder(kind: OracleKind) -> EngineBuilder {
        Engine::builder(toy_scenario())
            .budget(3.0)
            .promotions(2)
            .config(DysimConfig::fast())
            .oracle(kind)
    }

    fn sketch_kind(shards: usize) -> OracleKind {
        OracleKind::RrSketch {
            sets_per_item: 192,
            shards,
            threads: 0,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "imdpp-engine-persist-{name}-{}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn persist_restore_round_trips_without_resampling() {
        for (i, kind) in [OracleKind::MonteCarlo, sketch_kind(1), sketch_kind(3)]
            .into_iter()
            .enumerate()
        {
            let is_sketch = matches!(kind, OracleKind::RrSketch { .. });
            let engine = builder(kind).build().unwrap();
            let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
            let applied = engine.apply(&update).unwrap();
            assert_eq!(applied.epoch, 1);
            let served = engine.solve_report();

            let path = temp_path(&format!("roundtrip-{i}"));
            engine.persist(&path).unwrap();
            let drifted = engine.snapshot().scenario().clone();
            let restored = Engine::builder(drifted)
                .budget(3.0)
                .promotions(2)
                .config(DysimConfig::fast())
                .oracle(kind)
                .restore(&path)
                .unwrap();
            std::fs::remove_file(&path).unwrap();

            assert_eq!(restored.epoch(), 1);
            assert_eq!(restored.telemetry().gauge("engine.epoch"), Some(1));
            // Zero RR sets were sampled rebuilding the oracle.
            if is_sketch {
                assert_eq!(restored.telemetry().counter("sketch.sets_sampled"), Some(0));
                let a = engine.snapshot();
                let b = restored.snapshot();
                assert!(a
                    .oracle()
                    .as_sketch()
                    .unwrap()
                    .stores_equal(b.oracle().as_sketch().unwrap()));
            }
            // Estimates and the served solution are bit-identical.
            let probe = [(UserId(0), ItemId(0)), (UserId(1), ItemId(2))];
            assert_eq!(
                restored.static_spread(&probe).to_bits(),
                engine.static_spread(&probe).to_bits()
            );
            let after = restored.solve_report();
            assert_eq!(after.seeds, served.seeds);
            assert_eq!(after.nominees, served.nominees);
            assert_eq!(after.total_cost.to_bits(), served.total_cost.to_bits());
        }
    }

    #[test]
    fn restore_rejects_mismatched_worlds_and_corrupt_files() {
        let engine = builder(sketch_kind(2)).build().unwrap();
        let _ = engine.solve();
        let path = temp_path("mismatch");
        engine.persist(&path).unwrap();
        let scenario = engine.snapshot().scenario().clone();

        // Wrong seed, wrong oracle shape, wrong budget: all refused.
        for bad in [
            builder(sketch_kind(2)).seed(99),
            builder(sketch_kind(4)),
            builder(OracleKind::MonteCarlo),
            Engine::builder(scenario.clone())
                .budget(7.0)
                .promotions(2)
                .config(DysimConfig::fast())
                .oracle(sketch_kind(2)),
        ] {
            assert!(matches!(
                bad.restore(&path).unwrap_err(),
                ImdppError::InvalidConfig { .. }
            ));
        }

        // Truncations anywhere fail typed, never panic.
        let bytes = std::fs::read(&path).unwrap();
        let truncated = temp_path("truncated");
        for cut in [0, 4, MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&truncated, &bytes[..cut]).unwrap();
            assert!(
                matches!(
                    builder(sketch_kind(2)).restore(&truncated).unwrap_err(),
                    ImdppError::InvalidConfig { .. }
                ),
                "cut at {cut} must not restore"
            );
        }
        // Trailing garbage is refused too.
        let mut padded = bytes.clone();
        padded.push(0);
        std::fs::write(&truncated, &padded).unwrap();
        assert!(builder(sketch_kind(2)).restore(&truncated).is_err());
        std::fs::remove_file(&truncated).unwrap();

        // A missing file surfaces the I/O error.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            builder(sketch_kind(2)).restore(&path).unwrap_err(),
            ImdppError::Io(_)
        ));
    }

    #[test]
    fn maintained_solution_restores_with_the_engine() {
        let engine = builder(sketch_kind(1)).build().unwrap();
        let first = engine.solve_report();
        let path = temp_path("maintained");
        engine.persist(&path).unwrap();
        let restored = builder(sketch_kind(1)).restore(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        // The cache came back installed for the restored epoch, so the
        // first solve is a lookup, not a pipeline run...
        {
            let slot = restored.maintained.lock().unwrap();
            let cached = slot.as_ref().expect("the persisted cache must restore");
            assert_eq!(cached.epoch, 0);
        }
        // ...and it serves the identical report.
        let served = restored.solve_report();
        assert_eq!(served.seeds, first.seeds);
        assert_eq!(served.nominees, first.nominees);
    }

    #[test]
    fn persist_fails_typed_on_unwritable_paths() {
        let engine = builder(OracleKind::MonteCarlo).build().unwrap();
        let missing_dir = temp_path("no-such-dir").join("nested").join("out.bin");
        assert!(matches!(
            engine.persist(&missing_dir).unwrap_err(),
            ImdppError::Io(_)
        ));
    }
}
