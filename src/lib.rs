//! Umbrella crate re-exporting the IMDPP reproduction suite.
//!
//! See the individual crates for details:
//! - [`imdpp_graph`]: social-graph substrate
//! - [`imdpp_kg`]: knowledge graph, meta-graphs, personal item networks
//! - [`imdpp_diffusion`]: dynamic-perception diffusion process and Monte-Carlo engine
//! - [`imdpp_core`]: the IMDPP problem and the Dysim algorithm
//! - [`imdpp_baselines`]: OPT, BGRD, HAG, PS, DRHGA and classic IM baselines
//! - [`imdpp_sketch`]: RR-sketch influence oracle with incremental sample reuse
//! - [`imdpp_datasets`]: synthetic dataset generators
//! - [`imdpp_engine`]: the snapshot-isolated session façade (`Engine`) — the
//!   recommended entry point for applications
//! - [`imdpp_obs`]: zero-dependency telemetry (counters, base-2 histograms,
//!   span timers) threaded through the engine and the sketch

pub use imdpp_baselines as baselines;
pub use imdpp_core as core;
pub use imdpp_datasets as datasets;
pub use imdpp_diffusion as diffusion;
pub use imdpp_engine as engine;
pub use imdpp_graph as graph;
pub use imdpp_kg as kg;
pub use imdpp_obs as obs;
pub use imdpp_sketch as sketch;
