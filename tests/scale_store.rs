//! Scale smoke test: a 10⁵-user synthetic preset built, refreshed and
//! solved through `Engine` must never rebuild an inverted index after
//! construction — update cost tracks the *touched* region, not the corpus.
//!
//! Heavy by design, so it is `#[ignore]`d by default.  Run it with
//!
//! ```text
//! cargo test --release --test scale_store -- --ignored
//! ```
//!
//! (the dedicated CI step does exactly this, with its own timeout), or set
//! `IMDPP_SCALE_TEST=1` to run it through the env-gated wrapper without the
//! `--ignored` flag.  Either way, use `--release`: debug builds run the
//! `debug_assert`-guarded index-equivalence check (O(corpus) per refresh by
//! design) on a 100k-user world and take minutes instead of seconds.

use imdpp_suite::core::{DysimConfig, EdgeUpdate, OracleKind, ScenarioUpdate, UserId};
use imdpp_suite::datasets::config::{ImportanceDistribution, SocialModel};
use imdpp_suite::datasets::{generate, DatasetConfig};
use imdpp_suite::engine::Engine;

const SCALE_USERS: usize = 100_000;
const SETS_PER_ITEM: usize = 8192;
const SHARDS: usize = 4;

/// A 10⁵-user preferential-attachment world with a small catalogue: the
/// regime where a full counting pass per refresh dwarfs the touched region.
/// Influence strengths, preferences and the cost scale are chosen so the
/// high-degree candidates are affordable and cover a measurable slice of
/// the RR pool — the solve must commit real seeds, not degenerate to an
/// empty selection.
fn scale_config() -> DatasetConfig {
    DatasetConfig {
        name: "scale-100k".to_string(),
        users: SCALE_USERS,
        items: 5,
        directed_friendships: false,
        social_model: SocialModel::PreferentialAttachment { links_per_node: 3 },
        avg_influence_strength: 0.1,
        importance: ImportanceDistribution::Uniform { value: 1.0 },
        kg_features: 10,
        kg_brands: 4,
        kg_categories: 4,
        kg_keywords: 8,
        features_per_item: 2,
        keywords_per_item: 1,
        related_pair_fraction: 0.2,
        base_preference_range: (0.1, 0.5),
        cost_scale: 0.001,
        initial_metagraph_weight: 0.2,
        seed: 0x5CA1E,
    }
}

fn run_scale_smoke() {
    let instance = generate(&scale_config())
        .instance
        .with_budget(40.0)
        .with_promotions(2);
    let scenario_items = instance.scenario().item_count();
    assert_eq!(instance.scenario().user_count(), SCALE_USERS);

    // Shard-parallel construction at scale: the 4-shard build with 4
    // workers vs the same build driven sequentially.  Wall-clock is
    // *recorded*, not flaky-gated — on a loaded single-core CI runner the
    // parallel build can legitimately tie or lose by scheduling noise — but
    // both builds must land on identical stores with the rebuild counter
    // pinned at `items x shards`.  The sequential engine is reduced to a
    // content digest and dropped before the parallel build so the test's
    // peak memory stays at one 100k-user world.
    let engine_config = |threads: usize| {
        DysimConfig {
            mc_samples: 2,
            candidate_users: Some(12),
            max_nominees: Some(4),
            use_guard_solutions: false,
            ..DysimConfig::default()
        }
        .with_oracle(OracleKind::RrSketch {
            sets_per_item: SETS_PER_ITEM,
            shards: SHARDS,
            threads,
        })
    };
    // FNV-1a over every (item, set id, members) triple in global id order —
    // two sketches digest equal iff their stores are bit-identical.
    let sketch_digest = |engine: &Engine| -> u64 {
        let snapshot = engine.snapshot();
        let sketch = snapshot.oracle().as_sketch().expect("sketch-backed");
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |v: u64| {
            hash ^= v;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for item in snapshot.scenario().items() {
            mix(u64::from(item.0));
            for (id, set) in sketch.store(item).iter() {
                mix(u64::from(id));
                mix(set.len() as u64);
                for &u in &set {
                    mix(u64::from(u));
                }
            }
        }
        hash
    };
    let (sequential_build, sequential_digest) = {
        // lint: allow(clock) — wall-clock printed in the speedup report
        // below; only the digests are asserted on.
        let start = std::time::Instant::now();
        let sequential_engine = Engine::for_instance(&instance)
            .config(engine_config(1))
            .build()
            .expect("scale instance is valid");
        let elapsed = start.elapsed();
        // The sequential build performed exactly the per-shard passes too.
        assert_eq!(
            sequential_engine
                .snapshot()
                .oracle()
                .as_sketch()
                .expect("sketch-backed")
                .index_stats()
                .full_rebuilds,
            (scenario_items * SHARDS) as u64
        );
        (elapsed, sketch_digest(&sequential_engine))
    };

    // lint: allow(clock) — wall-clock printed in the speedup report below;
    // only the digests are asserted on.
    let parallel_start = std::time::Instant::now();
    let engine = Engine::for_instance(&instance)
        .config(engine_config(4))
        .build()
        .expect("scale instance is valid");
    let parallel_build = parallel_start.elapsed();
    println!(
        "100k-user {SHARDS}-shard build: sequential {:.2}s vs threads=4 {:.2}s ({:.2}x)",
        sequential_build.as_secs_f64(),
        parallel_build.as_secs_f64(),
        sequential_build.as_secs_f64() / parallel_build.as_secs_f64().max(1e-9),
    );
    if parallel_build > sequential_build {
        eprintln!(
            "WARNING: parallel build was slower than sequential on this run \
             ({:.2}s vs {:.2}s)",
            parallel_build.as_secs_f64(),
            sequential_build.as_secs_f64()
        );
    }
    assert_eq!(
        sketch_digest(&engine),
        sequential_digest,
        "threads=4 build diverged from the sequential build"
    );

    // Construction performs exactly one full index build per shard per item
    // — and that is the last full build the engine ever does.
    let built = engine
        .snapshot()
        .oracle()
        .as_sketch()
        .expect("engine is sketch-backed")
        .index_stats();
    assert_eq!(built.full_rebuilds, (scenario_items * SHARDS) as u64);
    assert_eq!(built.compactions, 0);

    // Localized drift: reweight one incoming edge of a low-degree user and
    // nudge one preference.  Every refresh must patch, never rebuild, and
    // touch only a sliver of the corpus.
    let (src, dst) = {
        let snapshot = engine.snapshot();
        let scenario = snapshot.scenario();
        let quiet = scenario
            .users()
            .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
            .expect("preset has users");
        let (src, _) = scenario
            .social()
            .influencers_of(quiet)
            .next()
            .expect("preferential-attachment users have neighbours");
        (src, quiet)
    };
    let drift = [
        ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src,
            dst,
            weight: 0.42,
        }]),
        ScenarioUpdate::Preferences(vec![(UserId(17), imdpp_suite::core::ItemId(1), 0.8)]),
        ScenarioUpdate::Edges(vec![EdgeUpdate::Remove { src, dst }]),
    ];
    for (i, update) in drift.iter().enumerate() {
        let applied = engine.apply(update).expect("in-range update");
        assert_eq!(applied.epoch, i as u64 + 1);
        assert_eq!(
            applied.refresh.full_rebuilds, 0,
            "update {i} fell back to a full index rebuild"
        );
        assert!(
            applied.refresh_fraction < 0.05,
            "update {i} re-sampled {:.2}% of the corpus — not localized",
            100.0 * applied.refresh_fraction
        );
        assert_eq!(applied.refresh.total_sets, scenario_items * SETS_PER_ITEM);
    }

    // A full solve over the drifted 10⁵-user world...
    let seeds = engine.solve();
    assert!(!seeds.is_empty());
    assert!(engine.snapshot().instance().is_feasible(&seeds));

    // ...and still zero post-build rebuilds anywhere (the acceptance
    // criterion: the rebuild counter stays at the initial build only).
    let final_stats = engine
        .snapshot()
        .oracle()
        .as_sketch()
        .expect("engine is sketch-backed")
        .index_stats();
    assert_eq!(final_stats.full_rebuilds, built.full_rebuilds);

    // Maintained solutions at scale: the solve above primed the cache
    // (maintenance is on by default for sketch engines), so three more
    // localized batches must *repair* it — never a full invalidation — and
    // the post-churn solve must be a cache lookup, not a 10⁵-user pipeline
    // run.  Wall-clocks are recorded for the CI log; the gates are the
    // repair stats.
    assert!(engine.config().maintain_bound.is_some());
    let maintained_drift = [
        ScenarioUpdate::Edges(vec![EdgeUpdate::Insert {
            src,
            dst,
            weight: 0.3,
        }]),
        ScenarioUpdate::Preferences(vec![(dst, imdpp_suite::core::ItemId(2), 0.7)]),
        ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src,
            dst,
            weight: 0.21,
        }]),
    ];
    for (i, update) in maintained_drift.iter().enumerate() {
        // lint: allow(clock) — wall-clock printed per batch; the assertions
        // are on repair counters, not time.
        let apply_start = std::time::Instant::now();
        let applied = engine.apply(update).expect("in-range update");
        let apply_wall = apply_start.elapsed();
        assert_eq!(
            applied.solve_repair.full_resolves, 0,
            "localized batch {i} invalidated the maintained solution"
        );
        assert!(
            applied.solve_repair.seeds_retained > 0,
            "localized batch {i} retained no greedy prefix"
        );
        // lint: allow(clock) — wall-clock printed per batch; the assertions
        // are on repair counters, not time.
        let solve_start = std::time::Instant::now();
        let maintained = engine.solve();
        let solve_wall = solve_start.elapsed();
        assert!(engine.snapshot().instance().is_feasible(&maintained));
        println!(
            "maintained batch {i}: apply (refresh + repair) {:.1}ms, \
             served solve {:.2}ms, retained {} / repaired {}",
            apply_wall.as_secs_f64() * 1e3,
            solve_wall.as_secs_f64() * 1e3,
            applied.solve_repair.seeds_retained,
            applied.solve_repair.positions_repaired,
        );
    }
    // The maintained pass performed no index rebuilds either.
    assert_eq!(
        engine
            .snapshot()
            .oracle()
            .as_sketch()
            .expect("engine is sketch-backed")
            .index_stats()
            .full_rebuilds,
        built.full_rebuilds
    );
}

const MILLION_USERS: usize = 1_000_000;
const MILLION_SETS_PER_ITEM: usize = 2048;
const MILLION_SHARDS: usize = 8;

/// The 10⁶-user world: denser influence and stronger preferences than the
/// 10⁵ preset, putting the per-edge traversal probability just past the
/// percolation threshold — a slice of RR traversals reaches a dense ~12%
/// cluster whose sorted member gaps encode in ~1 varint byte against 4 raw
/// bytes.  That is the regime the compressed arena is built for, and the
/// smoke asserts the ≥2× win rather than assuming it.  (Push the strength
/// much higher and the cluster swallows the graph: every set goes O(n) and
/// the build stops fitting a CI budget.)
fn million_config() -> DatasetConfig {
    DatasetConfig {
        name: "scale-1m".to_string(),
        users: MILLION_USERS,
        items: 3,
        directed_friendships: false,
        social_model: SocialModel::PreferentialAttachment { links_per_node: 4 },
        avg_influence_strength: 0.15,
        importance: ImportanceDistribution::Uniform { value: 1.0 },
        kg_features: 10,
        kg_brands: 4,
        kg_categories: 4,
        kg_keywords: 8,
        features_per_item: 2,
        keywords_per_item: 1,
        related_pair_fraction: 0.2,
        base_preference_range: (0.4, 0.7),
        cost_scale: 0.001,
        initial_metagraph_weight: 0.2,
        seed: 0x1_000_000,
    }
}

/// The 10⁶-user smoke behind the tentpole claim: build through the
/// (item × shard) work-queue over compressed arenas, drift locally, and
/// leave with zero post-build index rebuilds, a ≥2× arena compression
/// ratio, and the build wall-clock + peak RSS recorded into
/// `results/bench_scale_1m.json`.
fn run_million_user_smoke() {
    let instance = generate(&million_config())
        .instance
        .with_budget(40.0)
        .with_promotions(2);
    let scenario_items = instance.scenario().item_count();
    assert_eq!(instance.scenario().user_count(), MILLION_USERS);

    let config = DysimConfig {
        mc_samples: 2,
        candidate_users: Some(8),
        max_nominees: Some(4),
        use_guard_solutions: false,
        ..DysimConfig::default()
    }
    .with_oracle(OracleKind::RrSketch {
        sets_per_item: MILLION_SETS_PER_ITEM,
        shards: MILLION_SHARDS,
        threads: 0, // auto: every core the runner offers
    });

    // lint: allow(clock) — build wall-clock is recorded into the bench
    // summary; assertions are on rebuild counters and compression.
    let build_start = std::time::Instant::now();
    let engine = Engine::for_instance(&instance)
        .config(config)
        .build()
        .expect("million-user instance is valid");
    let build_wall = build_start.elapsed();

    let (built, live_bytes, uncompressed_bytes) = {
        let snapshot = engine.snapshot();
        let sketch = snapshot.oracle().as_sketch().expect("sketch-backed");
        (
            sketch.index_stats(),
            sketch.live_arena_bytes(),
            sketch.uncompressed_bytes(),
        )
    };
    // Construction does one counting build per (item, shard) — and that
    // must remain the last full build the engine ever performs.
    assert_eq!(
        built.full_rebuilds,
        (scenario_items * MILLION_SHARDS) as u64
    );

    // The headline arena claim: delta/varint member lists beat the flat
    // `4 bytes × member` pool by at least 2× at this scale.
    let ratio = uncompressed_bytes as f64 / (live_bytes as f64).max(1.0);
    println!(
        "1M-user build: {:.2}s, arena {:.1} MiB vs {:.1} MiB uncompressed ({ratio:.2}x), \
         {:.1} arena bytes/user",
        build_wall.as_secs_f64(),
        live_bytes as f64 / (1024.0 * 1024.0),
        uncompressed_bytes as f64 / (1024.0 * 1024.0),
        live_bytes as f64 / MILLION_USERS as f64,
    );
    assert!(
        ratio >= 2.0,
        "compressed arena only beat the flat pool by {ratio:.2}x (< 2x): \
         {live_bytes} live bytes vs {uncompressed_bytes} uncompressed"
    );

    // Localized drift at 10⁶ users: patch, never rebuild.
    let dst = UserId((MILLION_USERS - 1) as u32);
    let src = {
        let snapshot = engine.snapshot();
        let scenario = snapshot.scenario();
        let (src, _) = scenario
            .social()
            .influencers_of(dst)
            .next()
            .expect("preferential-attachment users have neighbours");
        src
    };
    let drift = [
        ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src,
            dst,
            weight: 0.42,
        }]),
        ScenarioUpdate::Preferences(vec![(UserId(17), imdpp_suite::core::ItemId(1), 0.8)]),
    ];
    for (i, update) in drift.iter().enumerate() {
        let applied = engine.apply(update).expect("in-range update");
        assert_eq!(
            applied.refresh.full_rebuilds, 0,
            "update {i} fell back to a full index rebuild"
        );
        assert_eq!(
            applied.refresh.total_sets,
            scenario_items * MILLION_SETS_PER_ITEM
        );
    }
    let final_stats = engine
        .snapshot()
        .oracle()
        .as_sketch()
        .expect("sketch-backed")
        .index_stats();
    assert_eq!(final_stats.full_rebuilds, built.full_rebuilds);

    // Record the run: wall-clock, peak RSS and the arena economics.
    let mut summary = imdpp_bench::BenchSummary::new("scale_1m");
    summary
        .record("users", MILLION_USERS as f64)
        .record("sets_per_item", MILLION_SETS_PER_ITEM as f64)
        .record("shards", MILLION_SHARDS as f64)
        .record("build_seconds", build_wall.as_secs_f64())
        .record("arena_live_bytes", live_bytes as f64)
        .record("arena_uncompressed_bytes", uncompressed_bytes as f64)
        .record("arena_compression_ratio", ratio)
        .record(
            "arena_bytes_per_user",
            live_bytes as f64 / MILLION_USERS as f64,
        )
        .record_peak_rss();
    let path = summary.write().expect("results/ is writable");
    println!("bench summary written to {}", path.display());
}

#[test]
#[ignore = "10^5-user scale smoke test (seconds of work + ~100 MB); run with --ignored or IMDPP_SCALE_TEST=1"]
fn hundred_thousand_users_refresh_and_solve_without_index_rebuilds() {
    run_scale_smoke();
}

/// Env-gated wrapper so opting in does not require `--ignored`:
/// `IMDPP_SCALE_TEST=1 cargo test --release --test scale_store`
/// (`--release` matters — see the module docs).
#[test]
fn scale_smoke_when_opted_in_via_env() {
    if std::env::var("IMDPP_SCALE_TEST").as_deref() == Ok("1") {
        run_scale_smoke();
    } else {
        println!("skipped: set IMDPP_SCALE_TEST=1 to run the 10^5-user scale smoke");
    }
}

#[test]
#[ignore = "10^6-user scale smoke (a minute of work + ~GB RSS); run with --ignored or IMDPP_SCALE_TEST_1M=1"]
fn million_users_build_and_refresh_on_the_compressed_arena() {
    run_million_user_smoke();
}

/// Env-gated wrapper for the 10⁶-user smoke:
/// `IMDPP_SCALE_TEST_1M=1 cargo test --release --test scale_store`.
/// Release mode is non-negotiable here — the debug index-equivalence
/// `debug_assert` is O(corpus) per refresh.
#[test]
fn million_user_smoke_when_opted_in_via_env() {
    if std::env::var("IMDPP_SCALE_TEST_1M").as_deref() == Ok("1") {
        run_million_user_smoke();
    } else {
        println!("skipped: set IMDPP_SCALE_TEST_1M=1 to run the 10^6-user scale smoke");
    }
}
