//! The determinism / concurrency harness of shard-parallel RR generation
//! and refresh (the PR-5 tentpole): over the full grid
//! `shards ∈ {1, 2, 4, 7} × threads ∈ {1, 2, 4, 8}`, building a sketch,
//! growing it and refreshing it through randomized edge / preference churn
//! must produce **bit-identical** spread estimates, standard errors, greedy
//! seed sets and [`RefreshStats`] — the invariant the sample-reuse papers
//! (Yalavarthi & Khan; Zhang et al.) rest on: locally-updated samples are
//! statistically indistinguishable from fresh ones, which here is the
//! stronger property that they are *the same bits* no matter how the work
//! was scheduled.
//!
//! A second part stress-tests the engine: `Engine::apply` keeps landing
//! updates (each refresh fanning out across shard workers) while reader
//! threads hammer the snapshot path — every read must observe a consistent
//! epoch and the run must finish with **zero** post-build index rebuilds.
//!
//! A third part pins the observability layer to the same standard: the
//! semantic telemetry counters and gauges an engine accumulates are
//! bit-identical across the `(shards, threads)` grid — recording is
//! passive, never part of the computation.
//!
//! Run twice in CI — once with the default test scheduler and once under
//! `RUST_TEST_THREADS=1` — so thread interleavings differ between runs.

use imdpp_suite::core::{
    DysimConfig, ItemId, OracleKind, RefreshStats, RefreshableOracle, ScenarioUpdate, UserId,
};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::diffusion::Scenario;
use imdpp_suite::engine::Engine;
use imdpp_suite::sketch::{SketchConfig, SketchOracle};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::churn::{decode_edge_updates, figure1_scenario, stress_batches};

const SHARD_GRID: [usize; 4] = [1, 2, 4, 7];
const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];
const USERS: usize = 10;
const SETS_PER_ITEM: usize = 128;

/// Everything a `(shards, threads)` run observes, in bit-comparable form.
/// `f64`s are compared through their raw bits: the claim is *identical
/// computation*, not approximate agreement.
#[derive(Debug, PartialEq, Eq)]
struct Observations {
    estimates: Vec<u64>,
    std_errors: Vec<u64>,
    greedy_seeds: Vec<Vec<UserId>>,
    greedy_covered: Vec<usize>,
    refresh_stats: Vec<RefreshStats>,
}

/// Builds a sketch with the given `(shards, threads)`, drives it through
/// `churn`, and records estimates / errors / greedy selections / refresh
/// statistics along the way.
fn observe(
    start: &Scenario,
    churn: &[ScenarioUpdate],
    shards: usize,
    threads: usize,
) -> (SketchOracle, Observations) {
    let config = SketchConfig::fixed(SETS_PER_ITEM)
        .with_base_seed(61)
        .with_shards(shards)
        .with_threads(threads);
    let mut oracle = SketchOracle::build(start, config);
    let mut obs = Observations {
        estimates: Vec::new(),
        std_errors: Vec::new(),
        greedy_seeds: Vec::new(),
        greedy_covered: Vec::new(),
        refresh_stats: Vec::new(),
    };
    let probes: [&[UserId]; 3] = [
        &[UserId(0)],
        &[UserId(1), UserId(4)],
        &[UserId(2), UserId(5), UserId(9)],
    ];
    let items: Vec<ItemId> = start.items().collect();
    let mut scenario = start.clone();
    let record = |oracle: &SketchOracle, obs: &mut Observations| {
        for &item in &items {
            for probe in probes {
                obs.estimates
                    .push(oracle.estimate_item_adopters(item, probe).to_bits());
                obs.std_errors
                    .push(oracle.estimate_item_std_error(item, probe).to_bits());
            }
            let sel = oracle.greedy_seeds(item, 3);
            obs.greedy_seeds.push(sel.seeds);
            obs.greedy_covered.push(sel.covered);
        }
    };
    record(&oracle, &mut obs);
    for update in churn {
        scenario = update.apply(&scenario);
        let stats = oracle.refresh(&scenario, update);
        obs.refresh_stats.push(stats);
        record(&oracle, &mut obs);
    }
    (oracle, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: for randomized worlds and randomized
    /// edge / preference churn, every `(shards, threads)` combination
    /// computes the *same bits* as the sequential flat reference —
    /// estimates, standard errors, greedy seed sets and refresh statistics.
    #[test]
    fn grid_of_shards_and_threads_is_bit_identical_under_churn(
        edges in proptest::collection::vec(
            (0u32..USERS as u32, 0u32..USERS as u32, 0.05f64..0.9), 0..30,
        ),
        raw_edge_churn in proptest::collection::vec(
            (0u32..3, 0u32..USERS as u32, 0u32..USERS as u32, 0.05f64..0.95),
            1..5,
        ),
        raw_pref_churn in proptest::collection::vec(
            (0u32..USERS as u32, 0u32..4u32, 0.05f64..0.95),
            1..4,
        ),
    ) {
        let start = figure1_scenario(USERS, edges);
        let churn = vec![
            ScenarioUpdate::Edges(decode_edge_updates(USERS as u32, &raw_edge_churn)),
            ScenarioUpdate::Preferences(
                raw_pref_churn
                    .iter()
                    .map(|&(u, x, p)| (UserId(u), ItemId(x), p))
                    .collect(),
            ),
        ];
        let (reference_oracle, reference) = observe(&start, &churn, 1, 1);
        for &shards in &SHARD_GRID {
            for &threads in &THREAD_GRID {
                if (shards, threads) == (1, 1) {
                    continue;
                }
                let (oracle, observed) = observe(&start, &churn, shards, threads);
                prop_assert!(
                    observed == reference,
                    "divergence at {} shards x {} threads: {:?} vs {:?}",
                    shards,
                    threads,
                    observed,
                    reference
                );
                prop_assert!(
                    oracle.stores_equal(&reference_oracle),
                    "{} shards x {} threads: stores differ from the flat sequential build",
                    shards,
                    threads
                );
                // No combination ever falls back to a full index rebuild
                // after its per-shard construction builds.
                let items = start.item_count();
                prop_assert_eq!(
                    oracle.index_stats().full_rebuilds,
                    (shards * items) as u64
                );
            }
        }
    }
}

/// `Engine::apply` racing readers while shard workers are active: a 4-shard,
/// 4-thread engine refreshes through a stream of updates (each refresh
/// fanning out one worker per shard) while reader threads pin snapshots and
/// query them.  Readers must only ever observe internally consistent
/// epochs, every apply must patch (never rebuild) the inverted indexes, and
/// the final incrementally-maintained sketch must equal a from-scratch
/// rebuild of the drifted world.
#[test]
fn engine_apply_races_readers_while_shard_workers_are_active() {
    const READERS: usize = 4;
    const BATCHES: usize = 18;
    const SHARDS: usize = 4;
    const SETS: usize = 256;

    let instance = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2);
    let users = instance.scenario().user_count() as u32;
    let items = instance.scenario().item_count();
    let cfg = DysimConfig {
        mc_samples: 6,
        candidate_users: Some(8),
        max_nominees: Some(3),
        ..DysimConfig::default()
    }
    .with_oracle(OracleKind::RrSketch {
        sets_per_item: SETS,
        shards: SHARDS,
        threads: 4,
    });
    let engine = Arc::new(
        Engine::for_instance(&instance)
            .config(cfg.clone())
            .build()
            .expect("valid engine"),
    );
    let probe = [(UserId(0), ItemId(0)), (UserId(3), ItemId(1))];

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let probe = probe.to_vec();
            // lint: allow(spawn) — test harness readers racing the writer;
            // no engine work is scheduled here.
            std::thread::spawn(move || {
                let mut observations = 0u64;
                // lint: allow(atomic-ordering) — advisory stop flag; a stale
                // read only yields one more observation.
                while !done.load(Ordering::Relaxed) {
                    // Pin one snapshot; its oracle and scenario must agree
                    // (querying twice through the pin is the torn-read
                    // detector: a half-swapped snapshot would differ).
                    let snapshot = engine.snapshot();
                    let a = snapshot.static_spread(&probe);
                    let b = snapshot.static_spread(&probe);
                    assert!(a.is_finite() && a >= 0.0);
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "snapshot answered differently twice at epoch {}",
                        snapshot.epoch()
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    // The writer: every apply refreshes the 4 shards on their own workers
    // while the readers above keep querying published snapshots.
    for (i, update) in stress_batches(users, items as u32, BATCHES)
        .iter()
        .enumerate()
    {
        let applied = engine.apply(update).expect("in-range update");
        assert_eq!(applied.epoch, i as u64 + 1);
        assert_eq!(
            applied.refresh.full_rebuilds, 0,
            "batch {i} fell back to a full index rebuild"
        );
        assert_eq!(applied.refresh.total_sets, SETS * items);
        assert!(applied.refresh_fraction < 1.0, "refresh must reuse samples");
        std::thread::yield_now();
    }
    // lint: allow(atomic-ordering) — advisory stop flag; join() below is
    // the real synchronisation point.
    done.store(true, Ordering::Relaxed);
    let total: u64 = readers
        .into_iter()
        .map(|h| h.join().expect("reader panicked"))
        .sum();
    assert!(total > 0, "readers never ran");

    // Zero full rebuilds after build: the only counting passes are the
    // `items x shards` construction builds (the acceptance criterion).
    let snapshot = engine.snapshot();
    let sketch = snapshot
        .oracle()
        .as_sketch()
        .expect("engine is sketch-backed");
    assert_eq!(
        sketch.index_stats().full_rebuilds,
        (items * SHARDS) as u64,
        "an apply performed a post-build index rebuild"
    );

    // And the maintained sketch is the rebuilt sketch, bit for bit —
    // regardless of scheduling, shard workers, or reader pressure.
    let rebuilt = SketchOracle::build(
        snapshot.scenario(),
        SketchConfig::fixed(SETS).with_base_seed(cfg.base_seed),
    );
    assert!(
        sketch.stores_equal(&rebuilt),
        "incremental maintenance drifted from a from-scratch rebuild"
    );
}

/// The observability surface of the grid invariant: every *semantic*
/// telemetry counter and gauge (sets sampled / resampled / reused, index
/// entries patched, refreshes, solves, applies, epoch, ...) is a pure
/// function of the scenario and the driver's call sequence — bit-identical
/// across `shards ∈ {1, 2, 4} × threads ∈ {1, 4}`.  Only the latency
/// histograms and per-shard observation counts may differ between grid
/// points, which is exactly why this test compares counters and gauges and
/// not histograms.  (Telemetry never feeds an RNG and never branches the
/// algorithms, so this is also a regression tripwire against anyone wiring
/// a metric into control flow.)
#[test]
fn telemetry_counters_are_identical_across_the_grid() {
    /// Named metric values, as (name, value) pairs in registration order.
    type Metrics = Vec<(String, u64)>;
    const BATCHES: usize = 6;
    let instance = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2);
    let users = instance.scenario().user_count() as u32;
    let items = instance.scenario().item_count() as u32;
    let churn = stress_batches(users, items, BATCHES);
    let run = |shards: usize, threads: usize| -> (Metrics, Metrics) {
        let engine = Engine::for_instance(&instance)
            .config(DysimConfig {
                mc_samples: 6,
                candidate_users: Some(8),
                max_nominees: Some(3),
                ..DysimConfig::default()
            })
            .oracle(OracleKind::RrSketch {
                sets_per_item: 256,
                shards,
                threads,
            })
            .build()
            .expect("valid engine");
        let seeds = engine.solve();
        let _sigma = engine.spread(&seeds);
        let _f = engine.static_spread(&[(UserId(0), ItemId(0))]);
        for (i, update) in churn.iter().enumerate() {
            let applied = engine.apply(update).expect("in-range update");
            assert_eq!(applied.epoch, i as u64 + 1);
        }
        let snap = engine.telemetry();
        assert!(
            !snap.is_empty(),
            "{shards} shards x {threads} threads recorded nothing"
        );
        (snap.counters, snap.gauges)
    };
    let reference = run(1, 1);
    assert!(
        reference
            .0
            .iter()
            .any(|(name, v)| name == "engine.applies" && *v == BATCHES as u64),
        "reference run did not count its applies: {:?}",
        reference.0
    );
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let observed = run(shards, threads);
            assert_eq!(
                observed, reference,
                "telemetry counters diverged at {shards} shards x {threads} threads"
            );
        }
    }
}

/// The engine surface of the grid invariant: solutions and reports do not
/// depend on the `threads` knob (spot-checked on the corners of the grid;
/// the store-level property test above covers the interior).
#[test]
fn engine_solutions_are_thread_count_independent() {
    let instance = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2);
    let build = |shards: usize, threads: usize| {
        Engine::for_instance(&instance)
            .config(DysimConfig {
                mc_samples: 6,
                candidate_users: Some(8),
                max_nominees: Some(3),
                ..DysimConfig::default()
            })
            .oracle(OracleKind::RrSketch {
                sets_per_item: 256,
                shards,
                threads,
            })
            .build()
            .expect("valid engine")
    };
    let reference = build(1, 1).solve_report();
    for (shards, threads) in [(1, 8), (4, 1), (4, 4), (7, 8)] {
        let report = build(shards, threads).solve_report();
        assert_eq!(
            report.seeds, reference.seeds,
            "{shards} shards x {threads} threads changed the solution"
        );
        assert_eq!(report.nominees, reference.nominees);
    }
}
