//! Serving-tier contract tests: batched spread queries answer bit-identical
//! to single queries while pinning their epoch against a concurrent writer;
//! copy-on-write tenant overlays are indistinguishable from N independent
//! engines while costing O(deltas) memory, not O(N · graph); and a
//! persisted engine warm-restarts into a process that serves batches and
//! tenants without resampling a single RR set.

use imdpp_suite::core::{
    DysimConfig, ImdppInstance, ItemId, Nominee, OracleKind, Seed, SeedGroup, UserId,
};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::engine::Engine;

mod common;
use common::churn::randomized_batches;

const SETS_PER_ITEM: usize = 512;

fn instance() -> ImdppInstance {
    generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2)
}

fn config(shards: usize) -> DysimConfig {
    DysimConfig {
        mc_samples: 6,
        candidate_users: Some(8),
        max_nominees: Some(3),
        ..DysimConfig::default()
    }
    .with_oracle(OracleKind::RrSketch {
        sets_per_item: SETS_PER_ITEM,
        shards,
        threads: 0,
    })
}

/// 32 distinct queries over a small nominee pool: every rotation of every
/// non-empty prefix, enough variety that a caching bug or an order-dependent
/// accumulator would show up as a bit difference.
fn queries(instance: &ImdppInstance) -> Vec<Vec<Nominee>> {
    let items = instance.scenario().item_count() as u32;
    let pool: Vec<Nominee> = (0..8u32).map(|u| (UserId(u), ItemId(u % items))).collect();
    let mut queries = Vec::new();
    'outer: for len in 1..=pool.len() {
        for rot in 0..len {
            let mut q: Vec<Nominee> = pool[..len].to_vec();
            q.rotate_left(rot);
            queries.push(q);
            if queries.len() == 32 {
                break 'outer;
            }
        }
    }
    assert_eq!(queries.len(), 32);
    queries
}

#[test]
fn batches_answer_bit_identical_to_single_queries_and_pin_their_epoch() {
    let instance = instance();
    let engine = Engine::for_instance(&instance)
        .config(config(2))
        .build()
        .expect("valid engine");
    let queries = queries(&instance);

    // Single-query answers at epoch 0, through the pinned snapshot.
    let snapshot = engine.snapshot();
    let singles: Vec<f64> = queries.iter().map(|q| snapshot.static_spread(q)).collect();

    // A batch pinned before the churn...
    let mut batch = engine.batch();
    for q in &queries {
        batch.push(q);
    }
    assert_eq!(batch.len(), 32);
    assert_eq!(batch.epoch(), 0);

    // ...survives updates landing between construction and evaluation.
    for update in randomized_batches(&instance, 0xBA7C4, 4).iter().take(3) {
        let _ = engine.apply(update).expect("in-range updates");
    }
    assert_eq!(engine.epoch(), 3);
    assert_eq!(batch.epoch(), 0, "the batch must stay pinned");

    let batched = batch.evaluate();
    assert_eq!(batched.len(), singles.len());
    for (i, (b, s)) in batched.iter().zip(&singles).enumerate() {
        assert_eq!(
            b.to_bits(),
            s.to_bits(),
            "query {i}: batched {b} != single {s}"
        );
    }

    // The convenience form answers the *current* epoch, also bit-identical
    // to its own per-query loop.
    let refs: Vec<&[Nominee]> = queries.iter().map(Vec::as_slice).collect();
    let now = engine.static_spread_batch(&refs);
    let current = engine.snapshot();
    for (i, (b, q)) in now.iter().zip(&queries).enumerate() {
        assert_eq!(b.to_bits(), current.static_spread(q).to_bits(), "query {i}");
    }
}

#[test]
fn tenant_overlays_match_independent_engines_across_the_shard_grid() {
    let instance = instance();
    let items = instance.scenario().item_count() as u32;
    let deltas: Vec<(UserId, ItemId, f64)> = vec![
        (UserId(3), ItemId(1 % items), 0.9),
        (UserId(7), ItemId(0), 0.05),
        (UserId(11), ItemId(2 % items), 0.7),
    ];
    let probe: SeedGroup = (0..3)
        .map(|u| Seed::new(UserId(u), ItemId(u % items), 1))
        .collect();

    for shards in [1, 2, 3] {
        let engine = Engine::for_instance(&instance)
            .config(config(shards))
            .build()
            .expect("valid engine");
        let tenant = engine.tenant(&deltas).expect("in-range deltas");

        // The gold standard the overlay must be indistinguishable from: a
        // full engine built on the tenant's own scenario.
        let tenant_instance = instance
            .with_scenario(instance.scenario().with_base_preferences(&deltas))
            .expect("preference deltas preserve dimensions");
        let independent = Engine::for_instance(&tenant_instance)
            .config(config(shards))
            .build()
            .expect("valid engine");

        for q in queries(&instance).iter().take(8) {
            assert_eq!(
                tenant.static_spread(q).to_bits(),
                independent.static_spread(q).to_bits(),
                "shards {shards}"
            );
        }
        let a = tenant.solve_report().expect("tenant solve");
        let b = independent.solve_report();
        assert_eq!(a.seeds, b.seeds, "shards {shards}");
        assert_eq!(a.nominees, b.nominees, "shards {shards}");
        assert_eq!(
            a.total_cost.to_bits(),
            b.total_cost.to_bits(),
            "shards {shards}"
        );
        assert_eq!(
            tenant.spread(&probe).expect("tenant spread").to_bits(),
            independent.spread(&probe).to_bits(),
            "shards {shards}"
        );

        // The overlay never mutated the shared base.
        assert_eq!(engine.epoch(), 0);
        assert_eq!(tenant.base_epoch(), 0);
    }
}

#[test]
fn n_tenants_cost_deltas_not_n_graphs() {
    let instance = instance();
    let items = instance.scenario().item_count() as u32;
    let users = instance.scenario().user_count() as u32;
    let engine = Engine::for_instance(&instance)
        .config(config(2))
        .build()
        .expect("valid engine");
    let base_arena = engine
        .snapshot()
        .oracle()
        .as_sketch()
        .expect("sketch-backed")
        .live_arena_bytes();
    let total_sets = engine
        .snapshot()
        .oracle()
        .as_sketch()
        .expect("sketch-backed")
        .total_sets();

    // N tenants, two deltas each, spread across distinct users/items.
    const TENANTS: u64 = 8;
    let mut overlay_total = 0u64;
    for t in 0..TENANTS {
        let deltas = [
            (
                UserId((t as u32 * 5) % users),
                ItemId(t as u32 % items),
                0.8,
            ),
            (
                UserId((t as u32 * 7 + 1) % users),
                ItemId((t as u32 + 1) % items),
                0.1,
            ),
        ];
        let tenant = engine.tenant(&deltas).expect("in-range deltas");
        // Each overlay patches only the RR sets its deltas invalidate.
        assert!(
            tenant.replaced_sets() < total_sets / 4,
            "tenant {t} patched {} of {} sets",
            tenant.replaced_sets(),
            total_sets
        );
        overlay_total += tenant.overlay_bytes();
    }

    // The byte-level O(deltas) gate, anchored to what N independent engines
    // actually pay (N compressed arenas — a strict lower bound on their
    // cost, before index, instance clone and allocator overhead).  Overlays
    // store their patched sets decoded, so on this 100-user instance each
    // one is not free; but all N together must stay under half the
    // N-engine arena bill, and the *average* overlay under one arena.
    // The asymptotic gap widens with graph size — patched sets scale with
    // the deltas' items, the arena with the whole corpus.
    assert!(
        overlay_total * 2 < TENANTS * base_arena,
        "{TENANTS} overlays cost {overlay_total} B, not clearly better than \
         {TENANTS} arenas ({} B)",
        TENANTS * base_arena
    );
    assert!(
        overlay_total / TENANTS < base_arena,
        "the average overlay ({} B) costs as much as a whole arena ({base_arena} B)",
        overlay_total / TENANTS
    );
}

/// Process-level confirmation of the byte accounting above, kept `#[ignore]`
/// because RSS is inherently noisy under parallel test runs: run it
/// explicitly with `cargo test --test serving_tier -- --ignored`.
#[test]
#[ignore = "RSS smoke — run explicitly; RSS is noisy under parallel tests"]
fn n_tenant_overlays_hold_rss_flat_versus_n_independent_engines() {
    const N: usize = 6;
    let instance = instance();

    let before_engines = imdpp_suite::obs::current_rss_bytes().expect("procfs");
    let engines: Vec<Engine> = (0..N)
        .map(|_| {
            Engine::for_instance(&instance)
                .config(config(2))
                .build()
                .expect("valid engine")
        })
        .collect();
    let engines_delta = imdpp_suite::obs::current_rss_bytes()
        .expect("procfs")
        .saturating_sub(before_engines);
    drop(engines);

    let engine = Engine::for_instance(&instance)
        .config(config(2))
        .build()
        .expect("valid engine");
    let before_tenants = imdpp_suite::obs::current_rss_bytes().expect("procfs");
    let tenants: Vec<_> = (0..N)
        .map(|t| {
            engine
                .tenant(&[(UserId(t as u32), ItemId(0), 0.8)])
                .expect("in-range deltas")
        })
        .collect();
    let after_tenants = imdpp_suite::obs::current_rss_bytes().expect("procfs");
    let tenants_delta = after_tenants.saturating_sub(before_tenants);
    drop(tenants);

    assert!(
        tenants_delta < engines_delta.max(1),
        "{N} overlays grew RSS by {tenants_delta} B, \
         {N} engines grew it by {engines_delta} B"
    );
}

#[test]
fn a_restored_engine_serves_batches_and_tenants_without_resampling() {
    let instance = instance();
    let engine = Engine::for_instance(&instance)
        .config(config(2))
        .build()
        .expect("valid engine");
    let queries = queries(&instance);
    let refs: Vec<&[Nominee]> = queries.iter().map(Vec::as_slice).collect();
    let deltas = [(UserId(4), ItemId(0), 0.75)];

    let before_batch = engine.static_spread_batch(&refs);
    let before_tenant = engine
        .tenant(&deltas)
        .expect("in-range deltas")
        .solve()
        .expect("tenant solve");

    let path =
        std::env::temp_dir().join(format!("imdpp-serving-restart-{}.bin", std::process::id()));
    engine.persist(&path).expect("persist succeeds");
    let restored = Engine::for_instance(&instance)
        .config(config(2))
        .restore(&path)
        .expect("restore succeeds");
    std::fs::remove_file(&path).expect("cleanup");

    assert_eq!(
        restored.telemetry().counter("sketch.sets_sampled"),
        Some(0),
        "restore must not resample"
    );
    let after_batch = restored.static_spread_batch(&refs);
    for (i, (a, b)) in before_batch.iter().zip(&after_batch).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "query {i}");
    }
    let after_tenant = restored
        .tenant(&deltas)
        .expect("in-range deltas")
        .solve()
        .expect("tenant solve");
    assert_eq!(before_tenant, after_tenant);
}
