//! Integration tests of the `imdpp-sketch` RR-sketch oracle: statistical
//! agreement with forward Monte-Carlo on frozen-dynamics scenarios, exact
//! equivalence of incremental refresh and from-scratch rebuilds, and the
//! sample-reuse guarantee under localized perception updates.

use imdpp_suite::baselines::build_sketch_oracle;
use imdpp_suite::core::nominees::{select_nominees_with_oracle, NomineeSelectionConfig};
use imdpp_suite::core::{CostModel, Evaluator, ImdppInstance, SpreadOracle};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::diffusion::{DynamicsConfig, Scenario, Seed, SeedGroup, SpreadEstimator};
use imdpp_suite::graph::{ItemId, SocialGraph, UserId};
use imdpp_suite::kg::hin::figure1_knowledge_graph;
use imdpp_suite::kg::{ItemCatalog, MetaGraph, RelevanceModel};
use imdpp_suite::sketch::{SketchConfig, SketchOracle};
use proptest::prelude::*;
use std::sync::Arc;

/// A random frozen-dynamics scenario over the Fig. 1 catalogue.
fn build_scenario(n: usize, edges: Vec<(u32, u32, f64)>) -> Scenario {
    let relevance = Arc::new(RelevanceModel::compute(
        &figure1_knowledge_graph(),
        MetaGraph::default_set(),
    ));
    let social = SocialGraph::from_influence_edges(
        n,
        edges
            .into_iter()
            .map(|(a, b, w)| (UserId(a % n as u32), UserId(b % n as u32), w))
            .filter(|(a, b, _)| a != b),
        true,
    );
    Scenario::builder()
        .social(social)
        .catalog(ItemCatalog::uniform(4))
        .relevance(relevance)
        .uniform_base_preference(0.5)
        .dynamics(DynamicsConfig::frozen())
        .build()
        .expect("generated scenario must be valid")
}

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..0.9f64), 0..(n * 3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sketch estimate of the static spread and a forward Monte-Carlo
    /// estimate of the same quantity must agree within three combined
    /// standard errors on frozen-dynamics scenarios.
    #[test]
    fn sketch_agrees_with_forward_monte_carlo_within_3_sigma(
        edges in arb_edges(12),
        seed_user in 0u32..12,
    ) {
        let scenario = build_scenario(12, edges);
        let oracle = SketchOracle::build(&scenario, SketchConfig::fixed(1500).with_base_seed(17));
        let seeds = [UserId(seed_user)];
        let item = ItemId(0);
        let sketch = oracle.estimate_item_adopters(item, &seeds);
        let sketch_se = oracle.estimate_item_std_error(item, &seeds);

        let group = SeedGroup::from_seeds(vec![Seed::new(UserId(seed_user), item, 1)]);
        let mc = SpreadEstimator::new(&scenario, 600, 23)
            .estimate_metric(&group, 1, |out| out.adoptions_of(item) as f64);

        let tolerance = 3.0 * (sketch_se + mc.std_error()) + 1e-6;
        prop_assert!(
            (sketch - mc.mean).abs() <= tolerance,
            "sketch {sketch:.3} vs monte-carlo {:.3} (tolerance {tolerance:.3})",
            mc.mean
        );
    }

    /// Incrementally refreshing the sketch after a perception update must be
    /// *identical* to rebuilding it from scratch with the same RNG streams.
    #[test]
    fn incremental_refresh_matches_from_scratch_rebuild(
        edges in arb_edges(10),
        changed in proptest::collection::vec(0u32..10, 1..3),
        bump in 0.55f64..0.95,
    ) {
        let before = build_scenario(10, edges);
        let changed_users: Vec<UserId> = {
            let mut c: Vec<UserId> = changed.iter().map(|&u| UserId(u)).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        // The drifted world: the changed users' preference for every item
        // moves to `bump`.
        let mut after = before.clone();
        for &u in &changed_users {
            for x in before.items() {
                after = after.with_base_preference(u, x, bump);
            }
        }

        let config = SketchConfig::fixed(256).with_base_seed(29);
        let mut incremental = SketchOracle::build(&before, config);
        let stats = incremental.apply_update(&after, &changed_users);
        let rebuilt = SketchOracle::build(&after, config);

        prop_assert!(stats.resampled_sets <= stats.total_sets);
        for item in after.items() {
            let inc: Vec<Vec<u32>> =
                incremental.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            let reb: Vec<Vec<u32>> =
                rebuilt.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            prop_assert_eq!(inc, reb);
        }
        // Estimates therefore agree exactly as well.
        let nominees: Vec<_> = after.users().map(|u| (u, ItemId(1))).collect();
        prop_assert!(
            (incremental.static_spread(&nominees) - rebuilt.static_spread(&nominees)).abs()
                < 1e-12
        );
    }
}

/// A localized perception update on a 100-user instance must re-sample a
/// minority of the RR sets — the sample-reuse guarantee of the sketch.
#[test]
fn localized_update_resamples_a_minority_of_sets() {
    let instance = generate(&DatasetKind::AmazonTiny.config()).instance;
    let scenario = instance.scenario();
    // The least influential user: fewest out-edges (ties toward larger id).
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");

    let mut oracle = SketchOracle::build(scenario, SketchConfig::fixed(1024).with_base_seed(41));
    let drifted = scenario.with_base_preference(quiet, ItemId(0), 0.9);
    let stats = oracle.apply_update(&drifted, &[quiet]);

    assert_eq!(stats.total_sets, 1024 * scenario.item_count());
    assert!(
        stats.resampled_sets > 0,
        "the changed user must invalidate something"
    );
    assert!(
        stats.resampled_fraction() < 0.5,
        "localized update re-sampled {:.1}% of RR sets",
        100.0 * stats.resampled_fraction()
    );
}

/// Greedy selection through the sketch oracle must match the Monte-Carlo
/// greedy's seed-set quality within 5% on toy and generated scenarios.
#[test]
fn sketch_greedy_matches_monte_carlo_greedy_within_5_percent() {
    let toy = {
        let s = imdpp_suite::diffusion::scenario::toy_scenario();
        let costs = CostModel::uniform(s.user_count(), s.item_count(), 1.0);
        ImdppInstance::new(s, costs, 2.0, 1).unwrap()
    };
    let amazon = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(100.0)
        .with_promotions(1);

    for (name, instance, sketch_sets, mc_samples, max_nominees) in [
        ("toy", toy, 2048, 400, None),
        ("amazon-tiny", amazon, 16_384, 200, Some(5)),
    ] {
        let frozen = instance
            .with_scenario(instance.scenario().with_dynamics(DynamicsConfig::frozen()))
            .unwrap();
        // The same CELF selection with the two oracles swapped.  The cap
        // equalizes the seed count on the generated instance (MC gains are
        // never exactly zero, so uncapped MC-CELF spends the whole budget
        // while coverage gains can reach zero and stop).
        let selection_config = NomineeSelectionConfig {
            max_nominees,
            ..NomineeSelectionConfig::default()
        };
        let universe: Vec<(UserId, ItemId)> =
            frozen.scenario().users().map(|u| (u, ItemId(0))).collect();
        let oracle =
            build_sketch_oracle(&frozen, SketchConfig::fixed(sketch_sets).with_base_seed(5));
        let sketch_seeds: SeedGroup =
            select_nominees_with_oracle(&frozen, &oracle, &universe, &selection_config)
                .nominees
                .into_iter()
                .map(|(u, x)| Seed::new(u, x, 1))
                .collect();
        let mc_oracle = Evaluator::new(&frozen, mc_samples, 7);
        let mc_seeds: SeedGroup =
            select_nominees_with_oracle(&frozen, &mc_oracle, &universe, &selection_config)
                .nominees
                .into_iter()
                .map(|(u, x)| Seed::new(u, x, 1))
                .collect();
        assert!(
            !sketch_seeds.is_empty() && !mc_seeds.is_empty(),
            "{name}: empty selection"
        );

        let reference = Evaluator::new(&frozen, 1_500, 99);
        let sketch_spread = reference.spread(&sketch_seeds);
        let mc_spread = reference.spread(&mc_seeds);
        assert!(
            (sketch_spread - mc_spread).abs() <= 0.05 * mc_spread.max(1.0),
            "{name}: sketch greedy {sketch_spread:.3} vs MC greedy {mc_spread:.3}"
        );
    }
}
