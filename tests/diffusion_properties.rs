//! Property-based tests (proptest) on the diffusion substrate: probabilities
//! stay in range, adoptions are unique, the static single-promotion spread is
//! monotone in the seed set, and Monte-Carlo estimation is deterministic.

use imdpp_suite::diffusion::{
    simulate, DynamicsConfig, Scenario, Seed, SeedGroup, SpreadEstimator,
};
use imdpp_suite::graph::{ItemId, SocialGraph, UserId};
use imdpp_suite::kg::hin::figure1_knowledge_graph;
use imdpp_suite::kg::{ItemCatalog, MetaGraph, RelevanceModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds a random scenario over the Fig. 1 item catalogue with `n` users and
/// the given directed edges.
fn build_scenario(n: usize, edges: Vec<(u32, u32, f64)>, frozen: bool) -> Scenario {
    let relevance = Arc::new(RelevanceModel::compute(
        &figure1_knowledge_graph(),
        MetaGraph::default_set(),
    ));
    let social = SocialGraph::from_influence_edges(
        n,
        edges
            .into_iter()
            .map(|(a, b, w)| (UserId(a % n as u32), UserId(b % n as u32), w))
            .filter(|(a, b, _)| a != b),
        true,
    );
    let dynamics = if frozen {
        DynamicsConfig::frozen()
    } else {
        DynamicsConfig::default()
    };
    Scenario::builder()
        .social(social)
        .catalog(ItemCatalog::uniform(4))
        .relevance(relevance)
        .uniform_base_preference(0.5)
        .dynamics(dynamics)
        .build()
        .expect("generated scenario must be valid")
}

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..0.9f64), 0..(n * 3))
}

fn arb_seeds(n: usize, promotions: u32) -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0u32..4, 1..=promotions), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adoptions_are_unique_and_bounded(
        edges in arb_edges(12),
        seeds in arb_seeds(12, 3),
        sim_seed in 0u64..1000,
    ) {
        let scenario = build_scenario(12, edges, false);
        let group = SeedGroup::from_seeds(
            seeds.iter().map(|&(u, x, t)| Seed::new(UserId(u), ItemId(x), t)).collect(),
        );
        let mut rng = StdRng::seed_from_u64(sim_seed);
        let out = simulate(&scenario, &group, 3, &mut rng);
        // No (user, item) pair is adopted twice.
        let mut seen = std::collections::HashSet::new();
        for r in out.records() {
            prop_assert!(seen.insert((r.user.0, r.item.0)));
            prop_assert!(r.promotion >= 1 && r.promotion <= 3);
        }
        // Adoption count cannot exceed |users| × |items|.
        prop_assert!(out.adoption_count() <= 12 * 4);
        // The spread equals importance-weighted record count (importance 1 here).
        prop_assert!((out.weighted_spread(&scenario) - out.adoption_count() as f64).abs() < 1e-9);
    }

    #[test]
    fn dynamic_probabilities_stay_in_range(
        edges in arb_edges(10),
        seeds in arb_seeds(10, 2),
        sim_seed in 0u64..1000,
    ) {
        let scenario = build_scenario(10, edges, false);
        let group = SeedGroup::from_seeds(
            seeds.iter().map(|&(u, x, t)| Seed::new(UserId(u), ItemId(x), t)).collect(),
        );
        let mut rng = StdRng::seed_from_u64(sim_seed);
        let out = simulate(&scenario, &group, 2, &mut rng);
        let state = out.state();
        for u in scenario.users() {
            for x in scenario.items() {
                let p = state.preference(&scenario, u, x);
                prop_assert!((0.0..=1.0).contains(&p), "preference {p}");
            }
            for (v, _) in scenario.social().influenced_by(u) {
                let s = state.influence(&scenario, u, v);
                prop_assert!((0.0..=1.0).contains(&s), "influence {s}");
            }
        }
    }

    #[test]
    fn static_single_promotion_spread_is_monotone_in_the_seed_set(
        edges in arb_edges(10),
        extra_user in 0u32..10,
        extra_item in 0u32..4,
    ) {
        let scenario = build_scenario(10, edges, true);
        let base = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)]);
        let bigger = base.with(Seed::new(UserId(extra_user), ItemId(extra_item), 1));
        let est = SpreadEstimator::new(&scenario, 24, 7).with_threads(1);
        let small = est.mean_spread(&base, 1);
        let large = est.mean_spread(&bigger, 1);
        // Lemma 1: under static probabilities in a single promotion the
        // importance-aware influence is monotone (up to shared-sample noise,
        // which the common RNG streams keep tiny).
        prop_assert!(large + 1e-6 >= small, "monotonicity violated: {small} -> {large}");
    }

    #[test]
    fn monte_carlo_estimates_are_deterministic(
        edges in arb_edges(8),
        seeds in arb_seeds(8, 2),
    ) {
        let scenario = build_scenario(8, edges, false);
        let group = SeedGroup::from_seeds(
            seeds.iter().map(|&(u, x, t)| Seed::new(UserId(u), ItemId(x), t)).collect(),
        );
        let a = SpreadEstimator::new(&scenario, 10, 99).with_threads(1).mean_spread(&group, 2);
        let b = SpreadEstimator::new(&scenario, 10, 99).with_threads(2).mean_spread(&group, 2);
        prop_assert!((a - b).abs() < 1e-12);
    }
}
