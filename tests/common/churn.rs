//! Churn-batch generators and scenario scaffolds shared by the snapshot,
//! determinism, sharding and maintenance suites (they each used to carry
//! their own near-identical copies).
//!
//! Named presets:
//!
//! * [`randomized_batches`] — seeded random preference / edge churn across
//!   the whole world, with periodic empty batches (epoch bumps),
//! * [`stress_batches`] — deterministic arithmetic batches (no RNG shim in
//!   the loop) for scheduler-stress tests that CI runs under two test
//!   schedulers,
//! * [`hub_centered_batches`] — the adversarial preset: every batch churns
//!   the highest-out-degree user, so RR invalidation frontiers are as wide
//!   as the world allows and cached greedy traces invalidate early,
//! * [`localized_batches`] — the benign preset: every batch churns around
//!   one low-degree fringe user, the regime where maintained solutions
//!   should survive with small repairs.

use imdpp_suite::core::{EdgeUpdate, ImdppInstance, ItemId, ScenarioUpdate, UserId};
use imdpp_suite::diffusion::{DynamicsConfig, Scenario};
use imdpp_suite::graph::SocialGraph;
use imdpp_suite::kg::hin::figure1_knowledge_graph;
use imdpp_suite::kg::{ItemCatalog, MetaGraph, RelevanceModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A frozen-dynamics scenario over the Fig. 1 catalogue from raw influence
/// edges (the scaffold the sharded-store, edge-update and determinism
/// suites all build on).  Out-of-range endpoints are wrapped into `users`
/// and self-loops dropped.
pub fn figure1_scenario(users: usize, edges: Vec<(u32, u32, f64)>) -> Scenario {
    let relevance = Arc::new(RelevanceModel::compute(
        &figure1_knowledge_graph(),
        MetaGraph::default_set(),
    ));
    let social = SocialGraph::from_influence_edges(
        users,
        edges
            .into_iter()
            .map(|(a, b, w)| (UserId(a % users as u32), UserId(b % users as u32), w))
            .filter(|(a, b, _)| a != b),
        true,
    );
    Scenario::builder()
        .social(social)
        .catalog(ItemCatalog::uniform(4))
        .relevance(relevance)
        .uniform_base_preference(0.5)
        .dynamics(DynamicsConfig::frozen())
        .build()
        .expect("generated scenario must be valid")
}

/// `(kind, src, dst, weight)` tuples decoded into [`EdgeUpdate`]s with
/// endpoints wrapped into `users`: kind 0 = insert/upsert, 1 = remove,
/// 2 = reweight.
pub fn decode_edge_updates(users: u32, raw: &[(u32, u32, u32, f64)]) -> Vec<EdgeUpdate> {
    raw.iter()
        .map(|&(kind, src, dst, weight)| {
            let (src, dst) = (UserId(src % users), UserId(dst % users));
            match kind % 3 {
                0 => EdgeUpdate::Insert { src, dst, weight },
                1 => EdgeUpdate::Remove { src, dst },
                _ => EdgeUpdate::Reweight { src, dst, weight },
            }
        })
        .collect()
}

/// A deterministic stream of randomized update batches: alternating
/// preference moves and edge reweights/inserts/removals around random
/// in-range users, with every fifth batch empty (epoch bump without
/// refresh).
pub fn randomized_batches(
    instance: &ImdppInstance,
    seed: u64,
    batches: usize,
) -> Vec<ScenarioUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = instance.scenario().user_count() as u32;
    let items = instance.scenario().item_count() as u32;
    (0..batches)
        .map(|i| {
            if (i + 1).is_multiple_of(5) {
                return ScenarioUpdate::Edges(Vec::new());
            }
            if i.is_multiple_of(2) {
                let changes = (0..rng.gen_range(1..4usize))
                    .map(|_| {
                        (
                            UserId(rng.gen_range(0..users)),
                            ItemId(rng.gen_range(0..items)),
                            rng.gen_range(0.05f64..0.95f64),
                        )
                    })
                    .collect();
                ScenarioUpdate::Preferences(changes)
            } else {
                let updates = (0..rng.gen_range(1..3usize))
                    .map(|_| {
                        let src = UserId(rng.gen_range(0..users));
                        let mut dst = UserId(rng.gen_range(0..users));
                        if dst == src {
                            dst = UserId((dst.0 + 1) % users);
                        }
                        match rng.gen_range(0..3u32) {
                            0 => EdgeUpdate::Insert {
                                src,
                                dst,
                                weight: rng.gen_range(0.05f64..0.9f64),
                            },
                            1 => EdgeUpdate::Remove { src, dst },
                            _ => EdgeUpdate::Reweight {
                                src,
                                dst,
                                weight: rng.gen_range(0.05f64..0.9f64),
                            },
                        }
                    })
                    .collect();
                ScenarioUpdate::Edges(updates)
            }
        })
        .collect()
}

/// Deterministic update batches for scheduler-stress tests (no RNG: the
/// nondeterminism under test is the thread scheduler, and CI runs the same
/// binary under two scheduler configurations).
pub fn stress_batches(users: u32, items: u32, batches: usize) -> Vec<ScenarioUpdate> {
    (0..batches)
        .map(|i| {
            let k = i as u32;
            if i % 3 == 2 {
                ScenarioUpdate::Preferences(vec![(
                    UserId(k * 7 % users),
                    ItemId(k % items),
                    0.1 + 0.05 * f64::from(k % 16),
                )])
            } else {
                let src = UserId(k * 5 % users);
                let mut dst = UserId((k * 11 + 3) % users);
                if dst == src {
                    dst = UserId((dst.0 + 1) % users);
                }
                ScenarioUpdate::Edges(vec![if i % 3 == 0 {
                    EdgeUpdate::Reweight {
                        src,
                        dst,
                        weight: 0.2 + 0.04 * f64::from(k % 16),
                    }
                } else {
                    EdgeUpdate::Insert {
                        src,
                        dst,
                        weight: 0.15 + 0.03 * f64::from(k % 16),
                    }
                }])
            }
        })
        .collect()
}

/// The highest-out-degree user (ties to the smaller id) — the worst-case
/// centre for churn, since edges and preferences around the hub sit on the
/// most RR-set traversals.
pub fn hub_user(scenario: &Scenario) -> UserId {
    scenario
        .users()
        .max_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("scenario has users")
}

/// A low-out-degree fringe user (ties to the larger id) — the centre of the
/// benign localized preset.
pub fn fringe_user(scenario: &Scenario) -> UserId {
    scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("scenario has users")
}

/// The adversarial preset: every batch perturbs the hub user — alternating
/// between re-weighting its out-edges and moving its preferences — so each
/// refresh invalidates a maximal slice of the RR pool and any maintained
/// greedy trace is invalidated as early as possible.
pub fn hub_centered_batches(
    instance: &ImdppInstance,
    seed: u64,
    batches: usize,
) -> Vec<ScenarioUpdate> {
    let scenario = instance.scenario();
    let hub = hub_user(scenario);
    let users = scenario.user_count() as u32;
    let items = scenario.item_count() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|i| {
            if i.is_multiple_of(2) {
                let mut dst = UserId(rng.gen_range(0..users));
                if dst == hub {
                    dst = UserId((dst.0 + 1) % users);
                }
                ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                    src: hub,
                    dst,
                    weight: rng.gen_range(0.3f64..0.9f64),
                }])
            } else {
                ScenarioUpdate::Preferences(vec![(
                    hub,
                    ItemId(rng.gen_range(0..items)),
                    rng.gen_range(0.05f64..0.95f64),
                )])
            }
        })
        .collect()
}

/// The benign preset: every batch perturbs one fringe user — nudging a
/// preference or re-weighting one incident edge — the localized-churn
/// regime where refreshes touch a sliver of the pool and maintained
/// solutions should survive with small repairs.
pub fn localized_batches(
    instance: &ImdppInstance,
    seed: u64,
    batches: usize,
) -> Vec<ScenarioUpdate> {
    let scenario = instance.scenario();
    let fringe = fringe_user(scenario);
    let items = scenario.item_count() as u32;
    let users = scenario.user_count() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|i| {
            if i.is_multiple_of(2) {
                ScenarioUpdate::Preferences(vec![(
                    fringe,
                    ItemId(rng.gen_range(0..items)),
                    rng.gen_range(0.05f64..0.95f64),
                )])
            } else {
                let mut src = UserId(rng.gen_range(0..users));
                if src == fringe {
                    src = UserId((src.0 + 1) % users);
                }
                ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                    src,
                    dst: fringe,
                    weight: rng.gen_range(0.05f64..0.5f64),
                }])
            }
        })
        .collect()
}
