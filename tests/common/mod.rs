//! Shared fixtures for the integration-test suite.  Each test binary pulls
//! this in with `mod common;`, so not every binary uses every helper.
#![allow(dead_code)]

pub mod churn;
