//! Property-based tests on the knowledge-graph substrate: relevance scores
//! are symmetric, bounded and zero on the diagonal for arbitrary KGs, and
//! perception updates never push weights or relevances out of range.

use imdpp_suite::graph::{ItemId, UserId};
use imdpp_suite::kg::hin::KnowledgeGraphBuilder;
use imdpp_suite::kg::{
    EdgeType, MetaGraph, NodeType, PersonalPerception, RelationKind, RelevanceModel,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A random small KG: `items` item nodes, `mids` middle nodes of random
/// types, and random facts attaching items to middle nodes.
fn build_kg(items: usize, mids: usize, facts: &[(usize, usize, u8)]) -> RelevanceModel {
    let mut b = KnowledgeGraphBuilder::new();
    let item_nodes: Vec<_> = (0..items)
        .map(|i| b.add_node(NodeType::Item, format!("i{i}")))
        .collect();
    let mid_types = [
        (NodeType::Feature, EdgeType::Supports),
        (NodeType::Brand, EdgeType::ProducedBy),
        (NodeType::Category, EdgeType::BelongsTo),
        (NodeType::Keyword, EdgeType::TaggedWith),
    ];
    let mid_nodes: Vec<_> = (0..mids)
        .map(|i| b.add_node(mid_types[i % mid_types.len()].0, format!("m{i}")))
        .collect();
    for &(item, mid, kind) in facts {
        let item_node = item_nodes[item % items];
        let mid_node = mid_nodes[mid % mids];
        // Use the edge type matching the middle node's type so instances of
        // the default meta-graphs can exist; `kind` adds occasional direct
        // item-item links.
        if kind % 5 == 0 && items > 1 {
            let other = item_nodes[(item + 1) % items];
            if other != item_node {
                b.add_fact(item_node, other, EdgeType::RelatedTo);
            }
        } else {
            let et = mid_types[(mid % mids) % mid_types.len()].1;
            b.add_fact(item_node, mid_node, et);
        }
    }
    RelevanceModel::compute(&b.build(), MetaGraph::default_set())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn relevance_is_symmetric_bounded_and_hollow(
        facts in proptest::collection::vec((0usize..6, 0usize..5, 0u8..10), 0..40),
    ) {
        let model = build_kg(6, 5, &facts);
        for kind in [RelationKind::Complementary, RelationKind::Substitutable] {
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let r_ab = model.base_relevance(ItemId(a), ItemId(b), kind);
                    let r_ba = model.base_relevance(ItemId(b), ItemId(a), kind);
                    prop_assert!((0.0..=1.0).contains(&r_ab));
                    prop_assert!((r_ab - r_ba).abs() < 1e-12);
                    if a == b {
                        prop_assert_eq!(r_ab, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn related_items_never_contains_self_and_matches_scores(
        facts in proptest::collection::vec((0usize..5, 0usize..4, 0u8..10), 0..30),
    ) {
        let model = build_kg(5, 4, &facts);
        for a in 0..5u32 {
            let related = model.related_items(ItemId(a));
            prop_assert!(!related.contains(&ItemId(a)));
            for y in related {
                let any_positive = (0..model.len()).any(|m| {
                    model
                        .matrix(imdpp_suite::kg::MetaGraphId(m as u32))
                        .score(ItemId(a), y)
                        > 0.0
                });
                prop_assert!(any_positive);
            }
        }
    }

    #[test]
    fn perception_updates_keep_everything_in_range(
        facts in proptest::collection::vec((0usize..5, 0usize..4, 0u8..10), 5..30),
        adoptions in proptest::collection::vec((0u32..3, 0u32..5), 1..10),
        rate in 0.05f64..1.0,
    ) {
        let model = Arc::new(build_kg(5, 4, &facts));
        let mut perception = PersonalPerception::uniform(model, 3, 0.2);
        for &(u, x) in &adoptions {
            let adopted: Vec<ItemId> = adoptions
                .iter()
                .filter(|&&(v, _)| v == u)
                .map(|&(_, y)| ItemId(y))
                .collect();
            perception.update_on_adoption(UserId(u), &[ItemId(x)], &adopted, rate);
        }
        for u in 0..3u32 {
            for (i, &w) in perception.weight_vector(UserId(u)).iter().enumerate() {
                prop_assert!((0.01..=1.0).contains(&w), "weight {w} of meta-graph {i}");
            }
            for a in 0..5u32 {
                for b in 0..5u32 {
                    let c = perception.complementary(UserId(u), ItemId(a), ItemId(b));
                    let s = perception.substitutable(UserId(u), ItemId(a), ItemId(b));
                    prop_assert!((0.0..=1.0).contains(&c));
                    prop_assert!((0.0..=1.0).contains(&s));
                }
            }
        }
    }
}
