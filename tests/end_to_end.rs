//! Cross-crate integration tests: synthetic dataset → Dysim / baselines →
//! evaluation, checking feasibility and the qualitative orderings the paper
//! reports.

use imdpp_suite::baselines::{Algorithm, BaselineConfig, Bgrd, Drhga, Hag, PathScore};
use imdpp_suite::core::{DysimConfig, Evaluator, ImdppInstance, SeedGroup};
use imdpp_suite::datasets::{generate, generate_class, ClassSpec, DatasetKind};
use imdpp_suite::engine::Engine;

fn tiny_amazon(budget: f64, promotions: u32) -> ImdppInstance {
    generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(budget)
        .with_promotions(promotions)
}

fn fast_dysim() -> DysimConfig {
    DysimConfig {
        mc_samples: 8,
        candidate_users: Some(16),
        ..DysimConfig::default()
    }
}

/// Runs the full Dysim pipeline through the engine facade.
fn solve(instance: &ImdppInstance, config: DysimConfig) -> SeedGroup {
    Engine::for_instance(instance)
        .config(config)
        .build()
        .expect("valid engine")
        .solve()
}

fn fast_baseline() -> BaselineConfig {
    BaselineConfig {
        mc_samples: 8,
        candidate_users: Some(16),
        ..BaselineConfig::default()
    }
}

#[test]
fn all_algorithms_return_feasible_seed_groups_on_synthetic_data() {
    let instance = tiny_amazon(100.0, 3);
    let seeds = vec![
        ("Dysim", solve(&instance, fast_dysim())),
        ("BGRD", Bgrd::new(fast_baseline()).select(&instance)),
        ("HAG", Hag::new(fast_baseline()).select(&instance)),
        ("PS", PathScore::new(fast_baseline()).select(&instance)),
        ("DRHGA", Drhga::new(fast_baseline()).select(&instance)),
    ];
    for (name, group) in seeds {
        assert!(
            instance.is_feasible(&group),
            "{name} produced an infeasible group"
        );
        assert!(
            group
                .seeds()
                .iter()
                .all(|s| s.promotion <= instance.promotions()),
            "{name} used a promotion beyond T"
        );
    }
}

#[test]
fn dysim_is_competitive_with_every_baseline() {
    let instance = tiny_amazon(100.0, 3);
    let evaluator = Evaluator::new(&instance, 64, 0xBEEF);
    let dysim = evaluator.spread(&solve(&instance, fast_dysim()));
    let baselines = [
        (
            "BGRD",
            evaluator.spread(&Bgrd::new(fast_baseline()).select(&instance)),
        ),
        (
            "HAG",
            evaluator.spread(&Hag::new(fast_baseline()).select(&instance)),
        ),
        (
            "PS",
            evaluator.spread(&PathScore::new(fast_baseline()).select(&instance)),
        ),
        (
            "DRHGA",
            evaluator.spread(&Drhga::new(fast_baseline()).select(&instance)),
        ),
    ];
    for (name, spread) in baselines {
        assert!(
            dysim * 1.25 + 1.0 >= spread,
            "Dysim ({dysim:.1}) fell far behind {name} ({spread:.1})"
        );
    }
    // And it must clearly beat at least one of them (the paper reports a win
    // over every baseline; allowing Monte-Carlo noise we require one clear win).
    assert!(
        baselines.iter().any(|(_, s)| dysim > *s),
        "Dysim ({dysim:.1}) did not beat any baseline: {baselines:?}"
    );
}

#[test]
fn spread_grows_with_budget_for_dysim() {
    let small = tiny_amazon(60.0, 2);
    let large = tiny_amazon(160.0, 2);
    let spread_small = Evaluator::new(&small, 48, 1).spread(&solve(&small, fast_dysim()));
    let spread_large = Evaluator::new(&large, 48, 1).spread(&solve(&large, fast_dysim()));
    // A 5% relative tolerance absorbs Monte-Carlo noise on the saturated
    // tiny instance; a genuine regression with budget would be much larger.
    assert!(
        spread_large * 1.05 + 1.0 >= spread_small,
        "spread decreased with budget: {spread_small:.1} -> {spread_large:.1}"
    );
}

#[test]
fn more_promotions_do_not_hurt_dysim_on_the_course_classes() {
    let spec = ClassSpec::all()[3]; // class D (20 students) keeps this test fast
    let base = generate_class(&spec);
    let one = base.with_promotions(1);
    let three = base.with_promotions(3);
    let s1 = Evaluator::new(&one, 48, 2).spread(&solve(&one, fast_dysim()));
    let s3 = Evaluator::new(&three, 48, 2).spread(&solve(&three, fast_dysim()));
    assert!(
        s3 + 1.0 >= s1,
        "three promotions should not collapse the spread: T=1 {s1:.1}, T=3 {s3:.1}"
    );
}

#[test]
fn ablations_do_not_beat_full_dysim_by_a_wide_margin() {
    let instance = tiny_amazon(120.0, 4);
    let evaluator = Evaluator::new(&instance, 48, 3);
    let full = evaluator.spread(&solve(&instance, fast_dysim()));
    let no_tm = evaluator.spread(&solve(&instance, fast_dysim().without_target_markets()));
    let no_ip = evaluator.spread(&solve(&instance, fast_dysim().without_item_priority()));
    assert!(
        full * 1.3 + 1.0 >= no_tm,
        "w/o TM ({no_tm:.1}) >> full ({full:.1})"
    );
    assert!(
        full * 1.3 + 1.0 >= no_ip,
        "w/o IP ({no_ip:.1}) >> full ({full:.1})"
    );
}

#[test]
fn every_table_two_dataset_supports_an_end_to_end_run() {
    for kind in DatasetKind::large() {
        // Aggressively scaled down so the whole loop stays fast.
        let dataset = generate(&kind.config().scaled(0.05));
        let instance = dataset.instance.with_budget(80.0).with_promotions(2);
        let seeds = solve(&instance, fast_dysim());
        assert!(instance.is_feasible(&seeds), "{}", kind.name());
        let spread = Evaluator::new(&instance, 16, 4).spread(&seeds);
        assert!(spread >= 0.0);
    }
}
