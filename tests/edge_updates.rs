//! Integration tests of edge-update incremental maintenance: refreshing the
//! RR sketch after influence-edge insertions / deletions / strength changes
//! must be bit-identical to a from-scratch rebuild, no-op updates must
//! re-sample nothing, and the sketch-backed adaptive Dysim pipeline must
//! stay feasible while reusing a majority of its samples per round.

use imdpp_suite::core::{DysimConfig, EdgeUpdate, OracleKind, ScenarioUpdate, SpreadOracle};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::diffusion::{DynamicsConfig, Scenario};
use imdpp_suite::engine::Engine;
use imdpp_suite::graph::{ItemId, SocialGraph, UserId};
use imdpp_suite::kg::hin::figure1_knowledge_graph;
use imdpp_suite::kg::{ItemCatalog, MetaGraph, RelevanceModel};
use imdpp_suite::sketch::{SketchConfig, SketchOracle};
use proptest::prelude::*;
use std::sync::Arc;

/// A random frozen-dynamics scenario over the Fig. 1 catalogue.
fn build_scenario(n: usize, edges: Vec<(u32, u32, f64)>) -> Scenario {
    let relevance = Arc::new(RelevanceModel::compute(
        &figure1_knowledge_graph(),
        MetaGraph::default_set(),
    ));
    let social = SocialGraph::from_influence_edges(
        n,
        edges
            .into_iter()
            .map(|(a, b, w)| (UserId(a % n as u32), UserId(b % n as u32), w))
            .filter(|(a, b, _)| a != b),
        true,
    );
    Scenario::builder()
        .social(social)
        .catalog(ItemCatalog::uniform(4))
        .relevance(relevance)
        .uniform_base_preference(0.5)
        .dynamics(DynamicsConfig::frozen())
        .build()
        .expect("generated scenario must be valid")
}

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..0.9f64), 0..(n * 3))
}

/// `(kind, src, dst, weight)` tuples decoded into [`EdgeUpdate`]s:
/// kind 0 = insert/upsert, 1 = remove, 2 = reweight.
fn decode_updates(n: u32, raw: &[(u32, u32, u32, f64)]) -> Vec<EdgeUpdate> {
    raw.iter()
        .map(|&(kind, src, dst, weight)| {
            let (src, dst) = (UserId(src % n), UserId(dst % n));
            match kind % 3 {
                0 => EdgeUpdate::Insert { src, dst, weight },
                1 => EdgeUpdate::Remove { src, dst },
                _ => EdgeUpdate::Reweight { src, dst, weight },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Refreshing after a random sequence of edge insertions, deletions and
    /// strength changes must be *identical* to rebuilding the sketch from
    /// scratch against the updated scenario with the same RNG streams.
    #[test]
    fn edge_update_refresh_matches_from_scratch_rebuild(
        edges in arb_edges(10),
        raw_updates in proptest::collection::vec(
            (0u32..3, 0u32..10, 0u32..10, 0.05f64..0.95),
            1..8,
        ),
    ) {
        let before = build_scenario(10, edges);
        let updates = decode_updates(10, &raw_updates);
        let after = before.with_edge_updates(&updates);

        let config = SketchConfig::fixed(256).with_base_seed(43);
        let mut incremental = SketchOracle::build(&before, config);
        let stats = incremental.apply_edge_update(&after, &updates);
        let rebuilt = SketchOracle::build(&after, config);

        prop_assert!(stats.resampled_sets <= stats.total_sets);
        for item in after.items() {
            let inc: Vec<Vec<u32>> =
                incremental.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            let reb: Vec<Vec<u32>> =
                rebuilt.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            prop_assert_eq!(inc, reb);
        }
        // Estimates agree exactly as well.
        let nominees: Vec<_> = after.users().map(|u| (u, ItemId(2))).collect();
        prop_assert!(
            (incremental.static_spread(&nominees) - rebuilt.static_spread(&nominees)).abs()
                < 1e-12
        );
    }

    /// Interleaving edge updates with preference drift through the
    /// `RefreshableOracle` interface must also land exactly on the rebuild.
    #[test]
    fn mixed_update_stream_stays_exact(
        edges in arb_edges(8),
        raw_updates in proptest::collection::vec(
            (0u32..3, 0u32..8, 0u32..8, 0.05f64..0.95),
            1..4,
        ),
        pref_user in 0u32..8,
        pref in 0.55f64..0.95,
    ) {
        use imdpp_suite::core::RefreshableOracle;
        let start = build_scenario(8, edges);
        let config = SketchConfig::fixed(128).with_base_seed(47);
        let mut oracle = SketchOracle::build(&start, config);

        let step1 = ScenarioUpdate::Edges(decode_updates(8, &raw_updates));
        let mid = step1.apply(&start);
        let stats1 = oracle.refresh(&mid, &step1);
        prop_assert!(stats1.resampled_sets <= stats1.total_sets);

        let step2 = ScenarioUpdate::Preferences(vec![(UserId(pref_user), ItemId(0), pref)]);
        let end = step2.apply(&mid);
        let stats2 = oracle.refresh(&end, &step2);
        prop_assert!(stats2.resampled_sets <= stats2.total_sets);

        let rebuilt = SketchOracle::build(&end, config);
        for item in end.items() {
            let inc: Vec<Vec<u32>> =
                oracle.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            let reb: Vec<Vec<u32>> =
                rebuilt.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            prop_assert_eq!(inc, reb);
        }
    }
}

/// Regression: a batch of no-op edge updates (re-setting current strengths,
/// removing absent edges) must re-sample exactly zero RR sets.
#[test]
fn noop_edge_update_resamples_zero_sets() {
    let instance = generate(&DatasetKind::AmazonTiny.config()).instance;
    let scenario = instance.scenario();
    // Re-set an existing edge to its current strength and remove an edge
    // that does not exist: the graph is unchanged either way.
    let (src, dst, w) = scenario
        .users()
        .find_map(|u| {
            scenario
                .social()
                .influenced_by(u)
                .next()
                .map(|(v, w)| (u, v, w))
        })
        .expect("generated graph has edges");
    let (absent_src, absent_dst) = scenario
        .users()
        .find_map(|a| {
            scenario
                .users()
                .find(|&b| a != b && !scenario.social().graph().has_edge(a, b))
                .map(|b| (a, b))
        })
        .expect("a 100-user graph has at least one non-edge");
    let noop = [
        EdgeUpdate::Reweight {
            src,
            dst,
            weight: w,
        },
        EdgeUpdate::Insert {
            src,
            dst,
            weight: w,
        },
        EdgeUpdate::Remove {
            src: absent_src,
            dst: absent_dst,
        },
    ];

    let mut oracle = SketchOracle::build(scenario, SketchConfig::fixed(512).with_base_seed(53));
    let updated = scenario.with_edge_updates(&noop);
    let stats = oracle.apply_edge_update(&updated, &noop);
    assert_eq!(
        stats.resampled_sets, 0,
        "a no-op batch must reuse every RR set"
    );
    assert_eq!(stats.total_sets, 512 * scenario.item_count());
}

/// The sketch-backed adaptive pipeline must produce feasible campaigns and
/// reuse a majority of its RR sets on localized per-round edge updates.
#[test]
fn sketch_backed_adaptive_pipeline_reuses_samples() {
    let instance = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(3);
    let scenario = instance.scenario();
    // A localized update per inter-round gap: reweight one low-degree
    // user's incoming edge.
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");
    let incoming = scenario.social().influencers_of(quiet).next();
    let drift: Vec<ScenarioUpdate> = (0..2)
        .map(|i| match incoming {
            Some((v, w)) => ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                src: v,
                dst: quiet,
                weight: (w + 0.1 * (i + 1) as f64).min(1.0),
            }]),
            None => ScenarioUpdate::Edges(vec![EdgeUpdate::Insert {
                src: quiet,
                dst: UserId((quiet.0 + 1) % scenario.user_count() as u32),
                weight: 0.2 + 0.1 * i as f64,
            }]),
        })
        .collect();

    let cfg = DysimConfig {
        mc_samples: 8,
        candidate_users: Some(16),
        max_nominees: Some(4),
        ..DysimConfig::default()
    }
    .with_oracle(OracleKind::RrSketch {
        sets_per_item: 512,
        shards: 1,
        threads: 0,
    });

    let engine = Engine::for_instance(&instance)
        .config(cfg)
        .build()
        .expect("valid engine");
    let report = engine.adaptive(instance.promotions(), &drift);
    assert!(instance.is_feasible(&report.seeds));
    assert!(!report.seeds.is_empty());
    assert_eq!(report.refresh_fractions.len(), 2);
    for &fraction in &report.refresh_fractions {
        assert!(
            fraction < 0.5,
            "localized edge update must re-sample < 50% of RR sets, got {:.1}%",
            100.0 * fraction
        );
    }
}

/// One config knob flips the full Dysim pipeline between estimators; both
/// must return feasible, non-empty campaigns on a generated instance.
#[test]
fn config_knob_selects_the_estimator_end_to_end() {
    let instance = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2);
    let base = DysimConfig {
        mc_samples: 8,
        candidate_users: Some(16),
        max_nominees: Some(4),
        ..DysimConfig::default()
    };
    let solve = |config: DysimConfig| {
        Engine::for_instance(&instance)
            .config(config)
            .build()
            .expect("valid engine")
            .solve_report()
    };
    let mc = solve(base.clone());
    let sk = solve(base.with_oracle(OracleKind::RrSketch {
        sets_per_item: 2048,
        shards: 1,
        threads: 0,
    }));
    assert!(instance.is_feasible(&mc.seeds) && !mc.seeds.is_empty());
    assert!(instance.is_feasible(&sk.seeds) && !sk.seeds.is_empty());
}
