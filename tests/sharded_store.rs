//! Property suite of the sharded RR store: for random scenarios, set pools
//! and update sequences, `ShardedRrStore` with `S ∈ {1, 2, 4, 7}` shards
//! must produce *identical* spread estimates, invalidation frontiers and
//! greedy seed sets to the flat `RrStore`, and the incrementally maintained
//! inverted index must equal a from-scratch `rebuild_index` after every
//! batch — with zero post-build full rebuilds.

use imdpp_suite::core::{RefreshableOracle, ScenarioUpdate, SpreadOracle};
use imdpp_suite::graph::{ItemId, UserId};
use imdpp_suite::sketch::{
    greedy_max_coverage, greedy_max_coverage_sharded, RrStore, SetId, ShardedRrStore, SketchConfig,
    SketchOracle,
};
use proptest::prelude::*;

mod common;
use common::churn::{decode_edge_updates, figure1_scenario};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const USERS: usize = 12;

/// Builds a flat store and one sharded store per shard count from the same
/// set pool, indexes built.
fn build_stores(sets: &[Vec<u32>]) -> (RrStore, Vec<ShardedRrStore>) {
    let mut flat = RrStore::new(ItemId(0), USERS);
    let mut sharded: Vec<ShardedRrStore> = SHARD_COUNTS
        .iter()
        .map(|&s| ShardedRrStore::new(ItemId(0), USERS, s))
        .collect();
    for set in sets {
        let users: Vec<UserId> = set.iter().map(|&u| UserId(u % USERS as u32)).collect();
        flat.push_set(&users);
        for store in &mut sharded {
            store.push_set(&users);
        }
    }
    flat.rebuild_index();
    for store in &mut sharded {
        store.rebuild_index();
    }
    (flat, sharded)
}

/// Distinct members for one RR-set entry (the sampler never emits
/// duplicates, so the stores are specified over duplicate-free sets).
fn dedup_members(set: &[u32]) -> Vec<u32> {
    let mut members: Vec<u32> = set.iter().map(|&u| u % USERS as u32).collect();
    members.sort_unstable();
    members.dedup();
    members
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Store-level equivalence under random build + replacement churn.
    #[test]
    fn sharded_store_matches_flat_store_under_churn(
        raw_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..USERS as u32, 1..6),
            1..24,
        ),
        replacements in proptest::collection::vec(
            (0usize..64, proptest::collection::vec(0u32..USERS as u32, 1..6)),
            0..12,
        ),
        probe in proptest::collection::vec(0u32..USERS as u32, 1..4),
    ) {
        let sets: Vec<Vec<u32>> = raw_sets.iter().map(|s| dedup_members(s)).collect();
        let (mut flat, mut sharded) = build_stores(&sets);
        let probe_users: Vec<UserId> = probe.iter().map(|&u| UserId(u)).collect();

        // Apply every replacement batch to all stores, checking equivalence
        // after each one.
        for (slot, raw_members) in &replacements {
            let id = (slot % sets.len()) as SetId;
            let members: Vec<UserId> = dedup_members(raw_members)
                .into_iter()
                .map(UserId)
                .collect();
            flat.replace_set(id, &members);
            for store in &mut sharded {
                store.replace_set(id, &members);
            }

            for store in &mut sharded {
                let shards = store.shard_count();
                prop_assert_eq!(store.len(), flat.len());
                prop_assert_eq!(store.set(id), flat.set(id));
                // Incremental index == rebuild_index, after every batch.
                prop_assert!(store.index_matches_rebuild(), "{} shards", shards);
                prop_assert_eq!(
                    store.sets_touching(&probe_users),
                    flat.sets_touching(&probe_users)
                );
            }
            prop_assert!(flat.index_matches_rebuild());
        }

        for store in &sharded {
            let shards = store.shard_count();
            // Identical estimates...
            prop_assert_eq!(
                store.estimate_adopters(&probe_users),
                flat.estimate_adopters(&probe_users)
            );
            prop_assert_eq!(
                store.estimate_std_error(&probe_users),
                flat.estimate_std_error(&probe_users)
            );
            // ...identical greedy selections (seeds, order, coverage)...
            for k in [1usize, 3, USERS] {
                let f = greedy_max_coverage(&flat, k);
                let s = greedy_max_coverage_sharded(store, k);
                prop_assert!(s.seeds == f.seeds, "{} shards, k = {}", shards, k);
                prop_assert_eq!(s.covered, f.covered);
                prop_assert_eq!(s.estimated_adopters, f.estimated_adopters);
            }
            // ...and zero full rebuilds beyond the construction pass of
            // each shard.
            prop_assert_eq!(store.index_stats().full_rebuilds, shards as u64);
        }
    }

    /// Oracle-level equivalence: a sharded `SketchOracle` driven through a
    /// random `ScenarioUpdate` stream stays bit-identical to the flat
    /// oracle (and hence to a from-scratch rebuild) at every step.
    #[test]
    fn sharded_oracle_tracks_flat_oracle_through_update_stream(
        edges in proptest::collection::vec(
            (0u32..10, 0u32..10, 0.05f64..0.9), 0..30,
        ),
        raw_updates in proptest::collection::vec(
            (0u32..3, 0u32..10, 0u32..10, 0.05f64..0.95),
            1..5,
        ),
        pref_user in 0u32..10,
        pref in 0.55f64..0.95,
    ) {
        let start = figure1_scenario(10, edges);
        let mut flat = SketchOracle::build(
            &start,
            SketchConfig::fixed(128).with_base_seed(53),
        );
        let mut sharded: Vec<SketchOracle> = SHARD_COUNTS[1..]
            .iter()
            .map(|&s| {
                SketchOracle::build(
                    &start,
                    SketchConfig::fixed(128).with_base_seed(53).with_shards(s),
                )
            })
            .collect();

        let edge_step = ScenarioUpdate::Edges(decode_edge_updates(10, &raw_updates));
        let mid = edge_step.apply(&start);
        let pref_step =
            ScenarioUpdate::Preferences(vec![(UserId(pref_user), ItemId(0), pref)]);
        let end = pref_step.apply(&mid);

        let flat_mid = flat.refresh(&mid, &edge_step);
        let flat_end = flat.refresh(&end, &pref_step);
        for oracle in &mut sharded {
            let s_mid = oracle.refresh(&mid, &edge_step);
            let s_end = oracle.refresh(&end, &pref_step);
            // The invalidation frontier is shard-independent, so the
            // refresh does identical work...
            prop_assert_eq!(s_mid.resampled_sets, flat_mid.resampled_sets);
            prop_assert_eq!(s_end.resampled_sets, flat_end.resampled_sets);
            // ...with zero full index rebuilds on either side.
            prop_assert_eq!(s_mid.full_rebuilds + s_end.full_rebuilds, 0);
            prop_assert!(flat.stores_equal(oracle), "{} shards", oracle.shard_count());
        }
        prop_assert_eq!(flat_mid.full_rebuilds + flat_end.full_rebuilds, 0);

        // Spread estimates and greedy selections agree exactly.
        let nominees: Vec<_> = end.users().map(|u| (u, ItemId(1))).collect();
        let reference = flat.static_spread(&nominees);
        for oracle in &sharded {
            prop_assert_eq!(oracle.static_spread(&nominees), reference);
            for item in end.items() {
                let f = flat.greedy_seeds(item, 3);
                let s = oracle.greedy_seeds(item, 3);
                prop_assert_eq!(&s.seeds, &f.seeds);
                prop_assert_eq!(s.covered, f.covered);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `ensure_precision` growth under **parallel** generation lands every
    /// grown set in the same shard as sequential growth: the stream → shard
    /// partition (`id mod S`) is a pure function of the set id, so worker
    /// scheduling cannot move a set — pools, placements and growth reports
    /// are identical for any thread count.
    #[test]
    fn parallel_growth_lands_sets_in_the_same_shards_as_sequential(
        edges in proptest::collection::vec(
            (0u32..10, 0u32..10, 0.05f64..0.9), 0..30,
        ),
        seed_user in 0u32..10,
    ) {
        let scenario = figure1_scenario(10, edges);
        let base = SketchConfig {
            initial_sets: 16,
            max_sets: 512,
            epsilon: 0.25,
            delta: 0.1,
            ..SketchConfig::default()
        };
        for shards in [2usize, 4, 7] {
            let mut sequential = SketchOracle::build(
                &scenario,
                SketchConfig { shards, threads: 1, ..base },
            );
            let seq_report = sequential.ensure_precision(ItemId(0), &[UserId(seed_user)]);
            for threads in [2usize, 4, 8] {
                let mut parallel = SketchOracle::build(
                    &scenario,
                    SketchConfig { shards, threads, ..base },
                );
                let report = parallel.ensure_precision(ItemId(0), &[UserId(seed_user)]);
                prop_assert_eq!(report.final_sets, seq_report.final_sets);
                prop_assert_eq!(report.rounds, seq_report.rounds);
                prop_assert!(
                    sequential.stores_equal(&parallel),
                    "{} shards x {} threads: grown pools differ",
                    shards,
                    threads
                );
                let s_store = sequential.store(ItemId(0));
                let p_store = parallel.store(ItemId(0));
                // Same per-shard lengths, same placement (`id mod S`), same
                // members shard by shard — thread-independent partition.
                for shard in 0..shards {
                    prop_assert_eq!(
                        p_store.shard(shard).len(),
                        s_store.shard(shard).len()
                    );
                }
                for (id, set) in s_store.iter() {
                    prop_assert_eq!(p_store.shard_of(id), id as usize % shards);
                    prop_assert_eq!(p_store.set(id), set);
                }
                prop_assert!(p_store.index_matches_rebuild());
            }
        }
    }
}

/// Growth through `ensure_precision` patches the index incrementally for
/// any shard count: same final pools as the flat oracle, no rebuilds.
#[test]
fn adaptive_growth_is_shard_independent_and_rebuild_free() {
    let scenario = figure1_scenario(10, vec![(0, 1, 0.4), (1, 2, 0.5), (2, 3, 0.6), (4, 0, 0.3)]);
    let config = SketchConfig {
        initial_sets: 16,
        max_sets: 1024,
        epsilon: 0.25,
        delta: 0.1,
        ..SketchConfig::default()
    };
    let mut flat = SketchOracle::build(&scenario, config);
    let flat_report = flat.ensure_precision(ItemId(0), &[UserId(0)]);
    for shards in [2usize, 4, 7] {
        let mut oracle = SketchOracle::build(&scenario, SketchConfig { shards, ..config });
        let built_rebuilds = oracle.index_stats().full_rebuilds;
        let report = oracle.ensure_precision(ItemId(0), &[UserId(0)]);
        assert_eq!(report.final_sets, flat_report.final_sets, "{shards} shards");
        assert_eq!(report.rounds, flat_report.rounds);
        assert!(flat.stores_equal(&oracle));
        assert!(oracle.store(ItemId(0)).index_matches_rebuild());
        assert_eq!(
            oracle.index_stats().full_rebuilds,
            built_rebuilds,
            "growth must patch the index, not rebuild it"
        );
    }
}
