//! Snapshot-isolation property test of the `imdpp-engine` façade: N reader
//! threads query `spread` while a single writer applies randomized
//! preference / edge update batches.  Every reader observation must be the
//! value of *some published epoch* — never a torn intermediate mixing the
//! pre-update scenario with the post-update estimator (or vice versa) — and
//! after the run the incrementally refreshed sketch must be bit-identical
//! to one rebuilt from scratch against the final world *through the
//! façade*.

use imdpp_suite::core::{
    DysimConfig, Evaluator, ImdppInstance, ItemId, OracleKind, ScenarioUpdate, Seed, SeedGroup,
    UserId,
};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::engine::Engine;
use imdpp_suite::sketch::{SketchConfig, SketchOracle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::churn::randomized_batches;

const READERS: usize = 4;
const UPDATE_BATCHES: usize = 12;
const SETS_PER_ITEM: usize = 256;

fn config() -> DysimConfig {
    DysimConfig {
        mc_samples: 6,
        candidate_users: Some(8),
        max_nominees: Some(3),
        ..DysimConfig::default()
    }
    .with_oracle(OracleKind::RrSketch {
        sets_per_item: SETS_PER_ITEM,
        // Sharded on purpose: snapshot isolation and the refresh
        // instrumentation must hold for the partitioned store too.
        shards: 2,
        threads: 0,
    })
}

fn instance() -> ImdppInstance {
    generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2)
}

/// The value `Engine::spread` must return at each epoch, computed
/// independently of the engine by replaying the update stream on the bare
/// instance (`Engine::spread` is a deterministic function of the snapshot's
/// scenario for a fixed configuration).
fn expected_per_epoch(
    instance: &ImdppInstance,
    batches: &[ScenarioUpdate],
    cfg: &DysimConfig,
    seeds: &SeedGroup,
) -> Vec<f64> {
    let mut current = instance.clone();
    let mut expected = vec![Evaluator::new(&current, cfg.mc_samples, cfg.base_seed).spread(seeds)];
    for update in batches {
        if !update.is_empty() {
            current = current
                .with_scenario(update.apply(current.scenario()))
                .expect("updates preserve dimensions");
        }
        expected.push(Evaluator::new(&current, cfg.mc_samples, cfg.base_seed).spread(seeds));
    }
    expected
}

#[test]
fn readers_observe_only_published_epochs_under_concurrent_updates() {
    let instance = instance();
    let cfg = config();
    let batches = randomized_batches(&instance, 0x5EED5, UPDATE_BATCHES);
    // A fixed probe group (no need for it to be optimal — only deterministic).
    let probe: SeedGroup = (0..4)
        .map(|u| {
            Seed::new(
                UserId(u),
                ItemId(u % instance.scenario().item_count() as u32),
                1,
            )
        })
        .collect();
    let expected = expected_per_epoch(&instance, &batches, &cfg, &probe);

    let engine = Arc::new(
        Engine::for_instance(&instance)
            .config(cfg.clone())
            .build()
            .expect("valid engine"),
    );
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let probe = probe.clone();
            let expected = expected.clone();
            // lint: allow(spawn) — test harness readers racing the writer;
            // no engine work is scheduled here.
            std::thread::spawn(move || {
                let mut observations = 0u64;
                let mut epochs_seen = std::collections::HashSet::new();
                // lint: allow(atomic-ordering) — advisory stop flag; a stale
                // read only yields one more observation.
                while !done.load(Ordering::Relaxed) {
                    // Pin one snapshot: its epoch and its spread value must
                    // belong together.
                    let snapshot = engine.snapshot();
                    let epoch = snapshot.epoch() as usize;
                    let value = snapshot.spread(&probe);
                    assert!(
                        epoch < expected.len(),
                        "reader observed unpublished epoch {epoch}"
                    );
                    assert!(
                        (value - expected[epoch]).abs() < 1e-9,
                        "torn read at epoch {epoch}: observed σ = {value}, \
                         the epoch's consistent value is {}",
                        expected[epoch]
                    );
                    // The engine-level convenience must agree with *some*
                    // published epoch too (it may race one epoch ahead of
                    // the pinned snapshot, never to an unpublished state).
                    let direct = engine.spread(&probe);
                    assert!(
                        expected.iter().any(|e| (direct - e).abs() < 1e-9),
                        "engine.spread returned {direct}, matching no published epoch"
                    );
                    epochs_seen.insert(epoch);
                    observations += 1;
                }
                (observations, epochs_seen)
            })
        })
        .collect();

    // The writer: land every batch, yielding so readers interleave.
    let item_count = instance.scenario().item_count();
    let mut applied_epochs = Vec::new();
    let mut entries_patched_total = 0u64;
    for update in &batches {
        let report = engine.apply(update).expect("in-range updates");
        applied_epochs.push(report.epoch);
        if update.is_empty() {
            assert_eq!(report.refresh_fraction, 0.0);
            assert_eq!(report.refresh.resampled_sets, 0);
        } else {
            assert!(
                report.refresh_fraction < 1.0,
                "sketch refresh must reuse samples"
            );
            // The refresh instrumentation: the fraction derives from the
            // counters, the whole corpus is accounted for, and — the
            // regression gate — index maintenance patched entries instead
            // of falling back to a full counting rebuild.
            assert_eq!(report.refresh_fraction, report.refresh.resampled_fraction());
            assert_eq!(report.refresh.total_sets, SETS_PER_ITEM * item_count);
            assert_eq!(
                report.refresh.full_rebuilds, 0,
                "a refresh fell back to rebuild_index"
            );
            if report.refresh.resampled_sets > 0 {
                assert!(report.refresh.index_entries_patched > 0);
            }
            entries_patched_total += report.refresh.index_entries_patched;
        }
        std::thread::yield_now();
    }
    assert!(
        entries_patched_total > 0,
        "twelve randomized batches must patch some index entries"
    );
    // lint: allow(atomic-ordering) — advisory stop flag; join() below is
    // the real synchronisation point.
    done.store(true, Ordering::Relaxed);

    let mut total_observations = 0;
    let mut all_epochs = std::collections::HashSet::new();
    for handle in readers {
        let (observations, epochs_seen) = handle.join().expect("reader panicked");
        total_observations += observations;
        all_epochs.extend(epochs_seen);
    }
    assert!(total_observations > 0, "readers never ran");
    assert_eq!(
        applied_epochs,
        (1..=UPDATE_BATCHES as u64).collect::<Vec<_>>(),
        "writer must advance the epoch by exactly one per batch"
    );
    assert_eq!(engine.epoch(), UPDATE_BATCHES as u64);

    // Through the façade, the incrementally refreshed sketch equals one
    // rebuilt from scratch against the final drifted world.
    let snapshot = engine.snapshot();
    let refreshed = snapshot
        .oracle()
        .as_sketch()
        .expect("engine was built sketch-backed");
    let rebuilt = SketchOracle::build(
        snapshot.scenario(),
        SketchConfig::fixed(SETS_PER_ITEM).with_base_seed(cfg.base_seed),
    );
    assert!(
        refreshed.stores_equal(&rebuilt),
        "refresh drifted from rebuild after {UPDATE_BATCHES} concurrent update batches"
    );
    // Cumulatively, the only full index builds are the per-shard
    // construction passes — every update batch maintained incrementally.
    assert_eq!(
        refreshed.index_stats().full_rebuilds,
        (2 * item_count) as u64
    );
}

#[test]
fn pinned_snapshots_survive_later_updates() {
    let instance = instance();
    let cfg = config();
    let probe: SeedGroup = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)]);
    let engine = Engine::for_instance(&instance)
        .config(cfg.clone())
        .build()
        .expect("valid engine");

    let pinned = engine.snapshot();
    let before = pinned.spread(&probe);

    for (i, update) in randomized_batches(&instance, 0xA11CE, UPDATE_BATCHES)
        .iter()
        .take(4)
        .enumerate()
    {
        let applied = engine.apply(update).expect("in-range updates");
        assert_eq!(applied.epoch, i as u64 + 1);
    }

    // The pinned epoch still answers exactly as before the drift.
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(pinned.spread(&probe), before);
    assert_eq!(engine.epoch(), 4);
}

/// Warm restart equivalence: persist an engine mid-churn, restore it into a
/// fresh process-worth of state, keep applying the same update stream to
/// both, and the restored engine must stay bit-identical to the engine that
/// never restarted — estimates, greedy seeds, and the telemetry epoch gauge
/// — across a shards × threads grid, with zero RR sets resampled on
/// restore.
#[test]
fn persist_restore_apply_matches_a_never_restarted_engine() {
    let instance = instance();
    let probe: SeedGroup = (0..4)
        .map(|u| {
            Seed::new(
                UserId(u),
                ItemId(u % instance.scenario().item_count() as u32),
                1,
            )
        })
        .collect();

    for (grid, (shards, threads)) in [(1, 1), (2, 2), (3, 1)].into_iter().enumerate() {
        let cfg = DysimConfig {
            mc_samples: 6,
            candidate_users: Some(8),
            max_nominees: Some(3),
            ..DysimConfig::default()
        }
        .with_oracle(OracleKind::RrSketch {
            sets_per_item: SETS_PER_ITEM,
            shards,
            threads,
        });
        let batches = randomized_batches(&instance, 0xC0FFEE, 6);

        let live = Engine::for_instance(&instance)
            .config(cfg.clone())
            .build()
            .expect("valid engine");
        for update in &batches[..3] {
            let _ = live.apply(update).expect("in-range updates");
        }
        // Solve *before* persisting so the maintained solution travels too.
        let seeds_mid = live.solve();
        let path = std::env::temp_dir().join(format!(
            "imdpp-warm-restart-{}-grid{grid}.bin",
            std::process::id()
        ));
        live.persist(&path).expect("persist succeeds");

        // The restore contract: the caller supplies the drifted scenario
        // (state is the caller's; the image carries sketch + epoch +
        // solution), so replay the applied updates on the bare instance.
        let mut drifted = instance.clone();
        for update in &batches[..3] {
            if !update.is_empty() {
                drifted = drifted
                    .with_scenario(update.apply(drifted.scenario()))
                    .expect("updates preserve dimensions");
            }
        }
        let restored = Engine::for_instance(&drifted)
            .config(cfg.clone())
            .restore(&path)
            .expect("restore succeeds");
        std::fs::remove_file(&path).expect("cleanup");

        // Bit-identical at the restore point: epoch (and its telemetry
        // gauge), spread estimates, greedy seeds — and the oracle came back
        // from disk, not from resampling.
        assert_eq!(restored.epoch(), 3, "grid {grid}");
        assert_eq!(
            restored.telemetry().gauge("engine.epoch"),
            Some(3),
            "grid {grid}"
        );
        assert_eq!(
            restored.telemetry().counter("sketch.sets_sampled"),
            Some(0),
            "restore must not resample (grid {grid})"
        );
        assert_eq!(
            live.spread(&probe).to_bits(),
            restored.spread(&probe).to_bits(),
            "grid {grid}"
        );
        assert_eq!(live.solve(), restored.solve(), "grid {grid}");
        assert_eq!(restored.solve(), seeds_mid, "grid {grid}");

        // Keep churning both engines in lockstep: the restarted world must
        // remain indistinguishable from the uninterrupted one.
        for (i, update) in batches[3..].iter().enumerate() {
            let a = live.apply(update).expect("in-range updates");
            let b = restored.apply(update).expect("in-range updates");
            assert_eq!(a.epoch, b.epoch, "grid {grid} batch {i}");
            assert_eq!(a.was_empty, b.was_empty, "grid {grid} batch {i}");
            assert_eq!(
                a.refresh_fraction.to_bits(),
                b.refresh_fraction.to_bits(),
                "grid {grid} batch {i}"
            );
            assert_eq!(
                live.spread(&probe).to_bits(),
                restored.spread(&probe).to_bits(),
                "grid {grid} batch {i}"
            );
        }
        assert_eq!(live.solve(), restored.solve(), "grid {grid}");
        assert_eq!(
            live.telemetry().gauge("engine.epoch"),
            restored.telemetry().gauge("engine.epoch"),
            "grid {grid}"
        );

        // And the two final sketches are the same store, bit for bit.
        let a = live.snapshot();
        let b = restored.snapshot();
        assert!(
            a.oracle()
                .as_sketch()
                .expect("sketch-backed")
                .stores_equal(b.oracle().as_sketch().expect("sketch-backed")),
            "grid {grid}"
        );
    }
}
