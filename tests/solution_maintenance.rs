//! The maintained-solution harness (the PR's tentpole): under churn, the
//! engine repairs its cached greedy solution instead of re-solving from
//! scratch, and the repair is **proven** against a fresh rebuild after
//! every batch:
//!
//! 1. *bound* — the served (maintained) solution's sketch objective is at
//!    least `maintain_bound` × the fresh-greedy objective, across the full
//!    `(shards, threads)` grid and three churn regimes (benign localized,
//!    adversarial hub-centered, mixed randomized),
//! 2. *paranoia* — with `maintain_bound = 1.0` the engine never serves a
//!    repaired solution: every non-empty update forces a full re-solve and
//!    the outcome is bit-identical to a maintenance-off engine,
//! 3. *determinism* — the per-batch [`RepairStats`] (retain / repair /
//!    full-resolve decisions) are identical across the grid, like every
//!    other semantic observable of the sketch.
//!
//! Run twice in CI — default scheduler and `RUST_TEST_THREADS=1` — so the
//! repair decisions are also exercised under different interleavings.

use imdpp_suite::core::{DysimConfig, ImdppInstance, OracleKind, ScenarioUpdate};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::engine::{Engine, RepairStats};

mod common;
use common::churn::{hub_centered_batches, localized_batches, randomized_batches};

const BOUND: f64 = 0.95;
const BOUND_EPSILON: f64 = 1e-9;
const SETS_PER_ITEM: usize = 256;

fn instance() -> ImdppInstance {
    generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2)
}

fn config(shards: usize, threads: usize) -> DysimConfig {
    DysimConfig {
        mc_samples: 6,
        candidate_users: Some(8),
        max_nominees: Some(3),
        ..DysimConfig::default()
    }
    .with_oracle(OracleKind::RrSketch {
        sets_per_item: SETS_PER_ITEM,
        shards,
        threads,
    })
}

/// The three churn regimes back to back: benign localized first (repairs
/// should survive), then adversarial hub-centered (wide invalidation
/// frontiers), then mixed randomized churn with empty batches.
fn churn_stream(instance: &ImdppInstance) -> Vec<ScenarioUpdate> {
    let mut stream = localized_batches(instance, 0xB0B, 6);
    stream.extend(hub_centered_batches(instance, 0xC0FFEE, 4));
    stream.extend(randomized_batches(instance, 0x5EED, 6));
    stream
}

/// Drives a maintained engine and a maintenance-off twin through `churn`,
/// asserting the bound after every batch, and returns the per-batch repair
/// decisions.
fn drive(instance: &ImdppInstance, shards: usize, threads: usize) -> Vec<RepairStats> {
    let maintained = Engine::for_instance(instance)
        .config(config(shards, threads))
        .build()
        .expect("valid engine");
    let fresh = Engine::for_instance(instance)
        .config(config(shards, threads))
        .maintain_bound(None)
        .build()
        .expect("valid engine");
    assert_eq!(
        maintained.config().maintain_bound,
        Some(BOUND),
        "maintenance must be on by default for sketch engines"
    );

    // Prime both caches; identical snapshots solve identically.
    let first = maintained.solve_report();
    assert_eq!(first.nominees, fresh.solve_report().nominees);

    let mut decisions = Vec::new();
    for (i, update) in churn_stream(instance).iter().enumerate() {
        let repaired = maintained.apply(update).expect("in-range update");
        let rebuilt = fresh.apply(update).expect("in-range update");
        // Tracked refresh (the repair's input) does the same estimator work
        // as the untracked one, bit for bit.
        assert_eq!(repaired.refresh, rebuilt.refresh, "batch {i}");
        assert_eq!(
            rebuilt.solve_repair,
            RepairStats::default(),
            "a maintenance-off engine must never repair"
        );
        decisions.push(repaired.solve_repair);

        // The served solution after this batch, vs. fresh greedy on the
        // identical drifted world.
        let served = maintained.solve_report();
        let reference = fresh.solve_report();
        let snap = maintained.snapshot();
        let sigma_served = snap.static_spread(&served.nominees);
        let sigma_fresh = snap.static_spread(&reference.nominees);
        assert!(
            sigma_served + BOUND_EPSILON >= BOUND * sigma_fresh,
            "batch {i} ({shards} shards x {threads} threads): served σ̂ = \
             {sigma_served} fell below {BOUND} x fresh σ̂ = {sigma_fresh}"
        );
        // A full resolve means the cache was dropped: the very next solve
        // ran the whole pipeline, so the served solution *is* fresh greedy.
        if repaired.solve_repair.full_resolves > 0 {
            assert_eq!(served.nominees, reference.nominees, "batch {i}");
            assert_eq!(served.seeds, reference.seeds, "batch {i}");
        }
    }
    decisions
}

/// Invariants 1 and 3: the bound holds after every batch at every grid
/// point, and the repair decisions are a pure function of the churn —
/// identical across `shards ∈ {1, 2, 4} × threads ∈ {1, 4}`.
#[test]
fn maintained_solutions_stay_within_the_bound_across_the_grid() {
    let instance = instance();
    let reference = drive(&instance, 1, 1);

    // The harness must actually exercise maintenance, or the bound holds
    // vacuously: some repair retains a greedy prefix verbatim, and the
    // adversarial stretch invalidates positions that CELF then recomputes.
    // (A within-bound full *invalidation* is not forced here — when the
    // first invalidated position is 0 the repair re-runs the whole
    // selection and equals fresh greedy, so it is always kept; the
    // cache-drop path is pinned by the paranoid test below instead.)
    assert!(
        reference
            .iter()
            .any(|s| s.full_resolves == 0 && s.seeds_retained > 0),
        "no repair ever retained a greedy prefix: {reference:?}"
    );
    assert!(
        reference.iter().any(|s| s.positions_repaired > 0),
        "no batch ever invalidated a greedy position: {reference:?}"
    );

    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let observed = drive(&instance, shards, threads);
            assert_eq!(
                observed, reference,
                "repair decisions diverged at {shards} shards x {threads} threads"
            );
        }
    }
}

/// Invariant 2 (paranoid mode): `maintain_bound = 1.0` promises "never
/// serve anything weaker than fresh", which the engine honours by treating
/// every non-empty update as a full invalidation — so its solutions are
/// bit-identical to a maintenance-off engine's at every epoch.
#[test]
fn paranoid_bound_is_bit_identical_to_maintenance_off() {
    let instance = instance();
    let paranoid = Engine::for_instance(&instance)
        .config(config(2, 4))
        .maintain_bound(Some(1.0))
        .build()
        .expect("valid engine");
    let off = Engine::for_instance(&instance)
        .config(config(2, 4))
        .maintain_bound(None)
        .build()
        .expect("valid engine");

    let mut cached_len = paranoid.solve_report().nominees.len();
    let _ = off.solve_report();
    for (i, update) in churn_stream(&instance).iter().enumerate() {
        let p = paranoid.apply(update).expect("in-range update");
        let o = off.apply(update).expect("in-range update");
        if update.is_empty() {
            // Nothing changed: even paranoia carries the cache forward.
            assert_eq!(
                p.solve_repair,
                RepairStats {
                    seeds_retained: cached_len,
                    positions_repaired: 0,
                    full_resolves: 0,
                },
                "batch {i}"
            );
        } else {
            assert_eq!(
                p.solve_repair,
                RepairStats {
                    seeds_retained: 0,
                    positions_repaired: 0,
                    full_resolves: 1,
                },
                "batch {i}: paranoid mode must always fully re-solve"
            );
        }
        assert_eq!(o.solve_repair, RepairStats::default(), "batch {i}");

        let served = paranoid.solve_report();
        let reference = off.solve_report();
        assert_eq!(served.seeds, reference.seeds, "batch {i}");
        assert_eq!(served.nominees, reference.nominees, "batch {i}");
        cached_len = served.nominees.len();
    }
}
