//! Regression pins for the [`ApplyReport`] field semantics — the write
//! path's public contract: epoch arithmetic, wall-clock accounting, the
//! refresh-fraction identity and the repair-stats defaults.  Each of these
//! has an exact meaning that downstream dashboards and the bench gate rely
//! on, so drift fails here rather than in a chart.

use imdpp_suite::core::{DysimConfig, ImdppInstance, OracleKind};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::engine::{Engine, RepairStats};
use std::time::Duration;

mod common;
use common::churn::randomized_batches;

const SETS_PER_ITEM: usize = 256;

fn instance() -> ImdppInstance {
    generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(60.0)
        .with_promotions(2)
}

fn engine(instance: &ImdppInstance) -> Engine {
    Engine::for_instance(instance)
        .config(DysimConfig {
            mc_samples: 6,
            candidate_users: Some(8),
            max_nominees: Some(3),
            ..DysimConfig::default()
        })
        .oracle(OracleKind::RrSketch {
            sets_per_item: SETS_PER_ITEM,
            shards: 2,
            threads: 2,
        })
        .build()
        .expect("valid engine")
}

#[test]
fn apply_report_fields_keep_their_semantics() {
    let instance = instance();
    let engine = engine(&instance);
    let items = instance.scenario().item_count();
    let batches = randomized_batches(&instance, 0xFACADE, 10);

    let mut swap_wall_total = Duration::ZERO;
    for (i, update) in batches.iter().enumerate() {
        let report = engine.apply(update).expect("in-range update");

        // Epochs advance by exactly one per apply — empty or not — and the
        // engine agrees with its own report.
        assert_eq!(report.epoch, i as u64 + 1);
        assert_eq!(engine.epoch(), report.epoch);

        // The refresh fraction *is* the counter ratio, and it is a fraction.
        assert_eq!(report.refresh_fraction, report.refresh.resampled_fraction());
        assert!((0.0..=1.0).contains(&report.refresh_fraction));

        // No solution has ever been solved for, so there is nothing to
        // maintain: the repair stats stay at their all-zero default even
        // with maintenance enabled.
        assert_eq!(report.solve_repair, RepairStats::default());

        // `was_empty` disambiguates the two ways `refresh_fraction` can be
        // zero: a vacuous no-op batch versus a genuine zero-resample update.
        assert_eq!(report.was_empty, update.is_empty());

        if update.is_empty() {
            // An empty batch refreshes nothing and says so.
            assert_eq!(report.refresh_wall, Duration::ZERO);
            assert_eq!(report.refresh.total_sets, 0);
            assert_eq!(report.refresh.resampled_sets, 0);
            assert_eq!(report.refresh_fraction, 0.0);
        } else {
            // A real batch accounts for the whole corpus and its refresh
            // wall-clock is measured, not defaulted.  Its fraction may
            // still be zero (nothing invalidated) — but never because the
            // batch was vacuous.
            assert!(!report.was_empty);
            assert!(report.refresh_wall > Duration::ZERO, "batch {i}");
            assert_eq!(report.refresh.total_sets, SETS_PER_ITEM * items);
        }
        // Individual snapshot swaps can round to zero on a coarse clock;
        // their sum over the run must not (asserted after the loop).
        swap_wall_total += report.swap_wall;
    }
    assert!(
        swap_wall_total > Duration::ZERO,
        "ten snapshot swaps took no measurable time at all"
    );
    assert_eq!(engine.epoch(), batches.len() as u64);
}
