//! Behavioural integration tests of Dysim on instances where the paper's
//! design arguments have a checkable consequence: antagonism between
//! substitutable items, the benefit of multiple promotions for complementary
//! chains, and the guard solutions of Theorem 5.

use imdpp_suite::core::{CostModel, DysimConfig, Evaluator, ImdppInstance, SeedGroup};
use imdpp_suite::diffusion::{DynamicsConfig, Scenario};
use imdpp_suite::engine::Engine;
use imdpp_suite::graph::{ItemId, SocialGraph, UserId};
use imdpp_suite::kg::hin::KnowledgeGraphBuilder;
use imdpp_suite::kg::{EdgeType, ItemCatalog, MetaGraph, NodeType, RelevanceModel};
use std::sync::Arc;

/// Two communities of users; items 0/1 are strong substitutes (same
/// category), items 2/3 are strong complements (shared features + direct
/// link).  Every user can be seeded at unit cost.
fn substitutes_and_complements_instance() -> ImdppInstance {
    let mut kg = KnowledgeGraphBuilder::new();
    let a = kg.add_node(NodeType::Item, "camera-a");
    let b = kg.add_node(NodeType::Item, "camera-b");
    let phone = kg.add_node(NodeType::Item, "phone");
    let pods = kg.add_node(NodeType::Item, "earbuds");
    let cat = kg.add_node(NodeType::Category, "cameras");
    let feat = kg.add_node(NodeType::Feature, "bluetooth");
    kg.add_fact(a, cat, EdgeType::BelongsTo);
    kg.add_fact(b, cat, EdgeType::BelongsTo);
    kg.add_fact(phone, feat, EdgeType::Supports);
    kg.add_fact(pods, feat, EdgeType::Supports);
    kg.add_fact(phone, pods, EdgeType::RelatedTo);
    let kg = kg.build();
    let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));

    // Two chains of four users each, bridged in the middle.
    let mut edges = Vec::new();
    for base in [0u32, 4u32] {
        for i in 0..3u32 {
            edges.push((UserId(base + i), UserId(base + i + 1), 0.6));
        }
    }
    edges.push((UserId(1), UserId(5), 0.4));
    let social = SocialGraph::from_influence_edges(8, edges, true);
    let catalog = ItemCatalog::with_names(
        vec![1.0, 1.0, 1.0, 0.8],
        vec![
            "camera-a".to_string(),
            "camera-b".to_string(),
            "phone".to_string(),
            "earbuds".to_string(),
        ],
    );
    let scenario = Scenario::builder()
        .social(social)
        .catalog(catalog)
        .relevance(relevance)
        .uniform_base_preference(0.5)
        .dynamics(DynamicsConfig::default())
        .build()
        .unwrap();
    let costs = CostModel::uniform(8, 4, 1.0);
    ImdppInstance::new(scenario, costs, 4.0, 3).unwrap()
}

fn fast() -> DysimConfig {
    DysimConfig {
        mc_samples: 12,
        candidate_users: Some(8),
        ..DysimConfig::default()
    }
}

/// Runs the full Dysim pipeline through the engine façade.
fn solve(instance: &ImdppInstance, config: DysimConfig) -> SeedGroup {
    Engine::for_instance(instance)
        .config(config)
        .build()
        .expect("valid engine")
        .solve()
}

#[test]
fn antagonistic_extent_separates_substitute_markets() {
    use imdpp_suite::core::market::TargetMarket;
    use imdpp_suite::core::ordering::antagonistic_extent;
    let instance = substitutes_and_complements_instance();
    // Market 0 promotes camera-a, market 1 promotes camera-b (substitutes),
    // market 2 promotes the phone (complementary to the earbuds only).
    let markets = vec![
        TargetMarket {
            index: 0,
            nominees: vec![(UserId(0), ItemId(0))],
            users: vec![UserId(0), UserId(1)],
            diameter: 1,
        },
        TargetMarket {
            index: 1,
            nominees: vec![(UserId(4), ItemId(1))],
            users: vec![UserId(4), UserId(5)],
            diameter: 1,
        },
        TargetMarket {
            index: 2,
            nominees: vec![(UserId(2), ItemId(2))],
            users: vec![UserId(2), UserId(3)],
            diameter: 1,
        },
    ];
    let group = vec![0, 1, 2];
    let ae_camera = antagonistic_extent(&instance, &markets, &group, 0);
    let ae_phone = antagonistic_extent(&instance, &markets, &group, 2);
    // The camera market conflicts with the other camera market; the phone
    // market conflicts with nobody, so AE must rank it first.
    assert!(ae_camera > 0.0, "camera market should have positive AE");
    assert_eq!(ae_phone, 0.0, "phone market should have zero AE");
}

#[test]
fn dysim_beats_a_substitute_heavy_manual_plan() {
    let instance = substitutes_and_complements_instance();
    let dysim = solve(&instance, fast());
    // A deliberately bad plan: spend the whole budget promoting the two
    // substitutable cameras to the same pair of users in promotion 1.
    let bad = SeedGroup::from_seeds(vec![
        imdpp_suite::core::Seed::new(UserId(0), ItemId(0), 1),
        imdpp_suite::core::Seed::new(UserId(0), ItemId(1), 1),
        imdpp_suite::core::Seed::new(UserId(4), ItemId(0), 1),
        imdpp_suite::core::Seed::new(UserId(4), ItemId(1), 1),
    ]);
    let ev = Evaluator::new(&instance, 96, 71);
    let dysim_spread = ev.spread(&dysim);
    let bad_spread = ev.spread(&bad);
    assert!(
        dysim_spread + 0.3 >= bad_spread,
        "Dysim ({dysim_spread:.2}) should not lose to the substitute-heavy plan ({bad_spread:.2})"
    );
}

#[test]
fn complementary_chain_benefits_from_a_second_promotion() {
    // Seeding the phone first and the earbuds later must not be worse than
    // promoting both at once: the phone adoption raises the earbuds
    // preference (cross elasticity), which the later promotion exploits.
    let instance = substitutes_and_complements_instance();
    let ev = Evaluator::new(&instance, 200, 5);
    let together = SeedGroup::from_seeds(vec![
        imdpp_suite::core::Seed::new(UserId(0), ItemId(2), 1),
        imdpp_suite::core::Seed::new(UserId(0), ItemId(3), 1),
    ]);
    let staged = SeedGroup::from_seeds(vec![
        imdpp_suite::core::Seed::new(UserId(0), ItemId(2), 1),
        imdpp_suite::core::Seed::new(UserId(0), ItemId(3), 2),
    ]);
    let sigma_together = ev.spread(&together);
    let sigma_staged = ev.spread(&staged);
    assert!(
        sigma_staged + 0.4 >= sigma_together,
        "staged complementary promotion ({sigma_staged:.2}) collapsed vs simultaneous ({sigma_together:.2})"
    );
}

#[test]
fn guard_solutions_never_make_the_result_worse() {
    let instance = substitutes_and_complements_instance();
    let with_guard = solve(&instance, fast());
    let without_guard = solve(
        &instance,
        DysimConfig {
            use_guard_solutions: false,
            ..fast()
        },
    );
    let ev = Evaluator::new(&instance, 96, 13);
    let guarded = ev.spread(&with_guard);
    let unguarded = ev.spread(&without_guard);
    assert!(
        guarded + 0.3 >= unguarded,
        "guard solutions reduced the spread: {unguarded:.2} -> {guarded:.2}"
    );
}

#[test]
fn full_timing_search_matches_windowed_dysim_on_a_small_instance() {
    let instance = substitutes_and_complements_instance();
    let windowed = solve(&instance, fast());
    let full = solve(
        &instance,
        DysimConfig {
            full_timing_search: true,
            ..fast()
        },
    );
    let ev = Evaluator::new(&instance, 96, 29);
    let sigma_windowed = ev.spread(&windowed);
    let sigma_full = ev.spread(&full);
    assert!(
        sigma_windowed + 0.4 >= sigma_full,
        "two-slot window lost too much: {sigma_windowed:.2} vs full search {sigma_full:.2}"
    );
}
