//! Product-launch campaign on a synthetic Amazon-shaped dataset: promote a
//! catalogue of related products over a sequence of promotions (the
//! motivating scenario of the paper's introduction — iPhone in September,
//! AirPods and chargers in the follow-up events).
//!
//! The example compares Dysim with the BGRD and PS baselines at two budgets
//! and shows how the spread grows with the number of promotions.
//!
//! Run with: `cargo run --release --example product_launch`

use imdpp_suite::baselines::{Algorithm, BaselineConfig, Bgrd, PathScore};
use imdpp_suite::core::{DysimConfig, Evaluator};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::engine::Engine;

fn main() {
    // A scaled-down Amazon-shaped dataset (heavy-tailed friendships, items
    // with features / brands / categories, directed influence edges).
    let config = DatasetKind::AmazonTiny.config();
    let dataset = generate(&config);
    println!(
        "dataset `{}`: {} users, {} items, {} KG facts",
        config.name,
        dataset.instance.scenario().user_count(),
        dataset.instance.scenario().item_count(),
        dataset.knowledge_graph.fact_count()
    );

    let select = DysimConfig {
        mc_samples: 16,
        ..DysimConfig::default()
    };
    let baseline_cfg = BaselineConfig {
        mc_samples: 16,
        ..BaselineConfig::default()
    };

    for budget in [75.0, 125.0] {
        for promotions in [1u32, 3] {
            let instance = dataset
                .instance
                .with_budget(budget)
                .with_promotions(promotions);
            let evaluator = Evaluator::new(&instance, 100, 7);

            let dysim = Engine::for_instance(&instance)
                .config(select.clone())
                .build()
                .expect("valid engine")
                .solve();
            let bgrd = Bgrd::new(baseline_cfg).select(&instance);
            let ps = PathScore::new(baseline_cfg).select(&instance);

            println!("\n— budget {budget}, {promotions} promotion(s) —");
            println!(
                "  Dysim: σ = {:6.1}  ({} seeds)",
                evaluator.spread(&dysim),
                dysim.len()
            );
            println!(
                "  BGRD : σ = {:6.1}  ({} seeds)",
                evaluator.spread(&bgrd),
                bgrd.len()
            );
            println!(
                "  PS   : σ = {:6.1}  ({} seeds)",
                evaluator.spread(&ps),
                ps.len()
            );
        }
    }
}
