//! Adaptive campaign (Sec. V-D): seeds are committed one promotion at a
//! time, without a pre-defined budget allocation across promotions, and the
//! plan for each promotion is revised after the previous one is observed.
//!
//! The world also *drifts* between promotions — here an influence edge
//! strengthens after round 1 and a user's preference moves after round 2 —
//! and the sketch-backed engine refreshes its RR pool incrementally (re-
//! sampling only what each update could have touched) instead of rebuilding.
//!
//! Run with: `cargo run --release --example adaptive_campaign`

use imdpp_suite::core::{EdgeUpdate, Evaluator, ItemId, OracleKind, ScenarioUpdate, UserId};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::engine::{DysimConfig, Engine};

fn main() {
    let dataset = generate(&DatasetKind::AmazonTiny.config());
    let instance = dataset.instance.with_budget(100.0).with_promotions(4);
    println!(
        "adaptive campaign on `{}`: {} users, budget {}, T = {}",
        dataset.config.name,
        instance.scenario().user_count(),
        instance.budget(),
        instance.promotions()
    );

    let config = DysimConfig {
        mc_samples: 12,
        ..DysimConfig::default()
    };

    // A Monte-Carlo engine for the reference plans.
    let mc_engine = Engine::for_instance(&instance)
        .config(config.clone())
        .build()
        .expect("valid engine");

    // Non-adaptive Dysim plans the whole campaign up front...
    let planned = mc_engine.solve();
    // ...while the adaptive variant decides each promotion's seeds in turn.
    let adaptive = mc_engine.adaptive(instance.promotions(), &[]);

    println!(
        "\nadaptive plan (static world): {} seeds, spent {:.1}",
        adaptive.seeds.len(),
        adaptive.spent
    );
    for (i, count) in adaptive.per_promotion.iter().enumerate() {
        println!("  promotion {}: {count} new seed(s)", i + 1);
    }

    // The same loop, sketch-backed and under world drift: one builder knob
    // swaps the nominee-selection estimator for the RR sketch, which is
    // *refreshed* between rounds instead of rebuilt.
    let scenario = instance.scenario();
    let (v, w, strength) = scenario
        .users()
        .find_map(|u| {
            scenario
                .social()
                .influenced_by(u)
                .next()
                .map(|(t, s)| (u, t, s))
        })
        .expect("the instance has influence edges");
    let drift = vec![
        // After promotion 1: the influence edge v -> w strengthens.
        ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: v,
            dst: w,
            weight: (strength + 0.2).min(1.0),
        }]),
        // After promotion 2: user 3 warms to item 0.
        ScenarioUpdate::Preferences(vec![(UserId(3), ItemId(0), 0.9)]),
    ];
    let sketch_engine = Engine::for_instance(&instance)
        .config(config)
        .oracle(OracleKind::RrSketch {
            sets_per_item: 2048,
            // Two shards to exercise the partitioned store; estimates and
            // seeds are identical for any shard and thread count.
            shards: 2,
            threads: 0,
        })
        .build()
        .expect("valid engine");
    let sketched = sketch_engine.adaptive(instance.promotions(), &drift);

    println!(
        "\nsketch-backed adaptive plan (drifting world): {} seeds, spent {:.1}",
        sketched.seeds.len(),
        sketched.spent
    );
    for (i, fraction) in sketched.refresh_fractions.iter().enumerate() {
        println!(
            "  drift before promotion {}: refreshed {:.1}% of RR sets (reused {:.1}%)",
            i + 2,
            100.0 * fraction,
            100.0 * (1.0 - fraction)
        );
    }

    // Final reporting uses a denser Monte-Carlo estimate than the cheap
    // selection sample count the engines run with.
    let evaluator = Evaluator::new(&instance, 100, 17);
    println!("\nexpected importance-aware spread (initial world):");
    println!(
        "  up-front Dysim          : {:.1}",
        evaluator.spread(&planned)
    );
    println!(
        "  adaptive Dysim          : {:.1}",
        evaluator.spread(&adaptive.seeds)
    );
    println!(
        "  sketch-backed adaptive  : {:.1}",
        evaluator.spread(&sketched.seeds)
    );
}
