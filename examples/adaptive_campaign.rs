//! Adaptive campaign (Sec. V-D): seeds are committed one promotion at a
//! time, without a pre-defined budget allocation across promotions, and the
//! plan for each promotion is revised after the previous one is observed.
//!
//! Run with: `cargo run --release --example adaptive_campaign`

use imdpp_suite::core::adaptive::adaptive_dysim;
use imdpp_suite::core::{Dysim, DysimConfig, Evaluator};
use imdpp_suite::datasets::{generate, DatasetKind};

fn main() {
    let dataset = generate(&DatasetKind::AmazonTiny.config());
    let instance = dataset.instance.with_budget(100.0).with_promotions(4);
    println!(
        "adaptive campaign on `{}`: {} users, budget {}, T = {}",
        dataset.config.name,
        instance.scenario().user_count(),
        instance.budget(),
        instance.promotions()
    );

    let config = DysimConfig {
        mc_samples: 12,
        ..DysimConfig::default()
    };

    // Non-adaptive Dysim plans the whole campaign up front...
    let planned = Dysim::new(config.clone()).run(&instance);
    // ...while the adaptive variant decides each promotion's seeds in turn.
    let adaptive = adaptive_dysim(&instance, &config);

    println!(
        "\nadaptive plan: {} seeds, spent {:.1}",
        adaptive.seeds.len(),
        adaptive.spent
    );
    for (i, count) in adaptive.per_promotion.iter().enumerate() {
        println!("  promotion {}: {count} new seed(s)", i + 1);
    }

    let evaluator = Evaluator::new(&instance, 100, 17);
    println!("\nexpected importance-aware spread:");
    println!("  up-front Dysim : {:.1}", evaluator.spread(&planned));
    println!(
        "  adaptive Dysim : {:.1}",
        evaluator.spread(&adaptive.seeds)
    );
}
