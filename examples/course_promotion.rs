//! Course-promotion campaign (the paper's empirical study, Sec. VI-E):
//! encourage the students of a class to select elective courses by seeding a
//! few students per promotion, exploiting the curriculum knowledge graph
//! (prerequisites = complementary evidence, shared research fields /
//! keywords = substitutable evidence).
//!
//! Run with: `cargo run --release --example course_promotion`

use imdpp_suite::baselines::{Algorithm, BaselineConfig, Hag};
use imdpp_suite::core::{DysimConfig, Evaluator};
use imdpp_suite::datasets::{generate_class, ClassSpec};
use imdpp_suite::engine::Engine;

fn main() {
    // Class A of Table III: 33 students, 293 friendship edges, 30 courses.
    let spec = ClassSpec::all()[0];
    let instance = generate_class(&spec);
    let catalog = instance.scenario().catalog().clone();
    println!(
        "class {}: {} students, {} friendship edges, {} elective courses, budget {}, T = {}",
        spec.id,
        instance.scenario().user_count(),
        instance.scenario().social().edge_count(),
        catalog.item_count(),
        instance.budget(),
        instance.promotions()
    );

    let report = Engine::for_instance(&instance)
        .config(DysimConfig {
            mc_samples: 16,
            ..DysimConfig::default()
        })
        .build()
        .expect("valid engine")
        .solve_report();

    println!("\nDysim campaign plan ({} seeds):", report.seeds.len());
    let mut by_promotion: Vec<Vec<String>> = vec![Vec::new(); instance.promotions() as usize];
    for seed in report.seeds.seeds() {
        by_promotion[(seed.promotion - 1) as usize].push(format!(
            "student {} promotes '{}'",
            seed.user.0,
            catalog.name(seed.item)
        ));
    }
    for (i, plans) in by_promotion.iter().enumerate() {
        println!("  promotion {}:", i + 1);
        for p in plans {
            println!("    {p}");
        }
        if plans.is_empty() {
            println!("    (no new seeds)");
        }
    }

    // Expected number of course selections (all courses have importance 1).
    let evaluator = Evaluator::new(&instance, 200, 3);
    let dysim_selections = evaluator.spread(&report.seeds);
    let hag = Hag::new(BaselineConfig {
        mc_samples: 16,
        ..BaselineConfig::default()
    })
    .select(&instance);
    let hag_selections = evaluator.spread(&hag);
    println!("\nexpected course selections:");
    println!("  Dysim: {dysim_selections:.1}");
    println!("  HAG  : {hag_selections:.1}");
}
