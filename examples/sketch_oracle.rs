//! The RR-sketch influence oracle end to end: build a sketch over a
//! generated instance, compare its static-spread estimates against forward
//! Monte-Carlo, select seeds greedily, then drift one user's perception and
//! refresh the sketch incrementally instead of rebuilding.
//!
//! Run with `cargo run --release --example sketch_oracle`.

use imdpp_suite::baselines::build_sketch_oracle;
use imdpp_suite::core::nominees::{select_nominees_with_oracle, NomineeSelectionConfig};
use imdpp_suite::core::{Evaluator, SpreadOracle};
use imdpp_suite::datasets::{generate, DatasetKind};
use imdpp_suite::diffusion::DynamicsConfig;
use imdpp_suite::graph::{ItemId, UserId};
use imdpp_suite::sketch::SketchConfig;
use std::time::Instant;

fn main() {
    let instance = generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(100.0)
        .with_promotions(1);
    let frozen = instance
        .with_scenario(instance.scenario().with_dynamics(DynamicsConfig::frozen()))
        .expect("frozen scenario is valid");
    let scenario = frozen.scenario();
    println!(
        "instance: {} users, {} items",
        scenario.user_count(),
        scenario.item_count()
    );

    // Build the sketch: 4096 RR sets per item on deterministic streams.
    // lint: allow(clock) — demo prints build time; nothing branches on it.
    let start = Instant::now();
    let mut oracle = build_sketch_oracle(&frozen, SketchConfig::fixed(4096).with_base_seed(7));
    println!(
        "built {} RR sets across {} stores in {:.1?}",
        oracle.total_sets(),
        scenario.item_count(),
        start.elapsed()
    );

    // One f(N) query under each estimator.
    let nominees: Vec<(UserId, ItemId)> = (0..4).map(|u| (UserId(u), ItemId(0))).collect();
    let evaluator = Evaluator::new(&frozen, 400, 11);
    // lint: allow(clock) — demo prints query latency; nothing branches on it.
    let t = Instant::now();
    let sketch_f = oracle.static_spread(&nominees);
    let sketch_time = t.elapsed();
    // lint: allow(clock) — demo prints query latency; nothing branches on it.
    let t = Instant::now();
    let mc_f = evaluator.static_spread(&nominees);
    let mc_time = t.elapsed();
    println!(
        "f(N) for 4 nominees: sketch {sketch_f:.3} in {sketch_time:.1?}, \
         monte-carlo {mc_f:.3} in {mc_time:.1?}"
    );

    // CELF nominee selection answered entirely from the sketch.
    let universe: Vec<(UserId, ItemId)> = scenario.users().map(|u| (u, ItemId(0))).collect();
    let selection = select_nominees_with_oracle(
        &frozen,
        &oracle,
        &universe,
        &NomineeSelectionConfig {
            max_nominees: Some(5),
            ..NomineeSelectionConfig::default()
        },
    );
    println!(
        "sketch CELF picked {:?} (objective {:.2}, {} oracle queries)",
        selection
            .nominees
            .iter()
            .map(|(u, _)| u.0)
            .collect::<Vec<_>>(),
        selection.objective,
        selection.evaluations,
    );

    // Perception drift at the least influential user: refresh incrementally.
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");
    let drifted = scenario.with_base_preference(quiet, ItemId(0), 0.9);
    // lint: allow(clock) — demo prints refresh latency; nothing branches on it.
    let t = Instant::now();
    let stats = oracle.apply_update(&drifted, &[quiet]);
    println!(
        "perception drift at {quiet}: re-sampled {}/{} RR sets ({:.2}%) in {:.1?} — \
         {:.2}% of the sketch reused",
        stats.resampled_sets,
        stats.total_sets,
        100.0 * stats.resampled_fraction(),
        t.elapsed(),
        100.0 * stats.reused_fraction(),
    );
}
