//! Quickstart: build a long-lived IMDPP engine around the paper's Fig. 1
//! knowledge graph, solve a campaign, query the spread, and drift the world
//! — the session shape every other example builds on.
//!
//! Run with: `cargo run --release --example quickstart`

use imdpp_suite::core::{CostModel, EdgeUpdate, Evaluator, ScenarioUpdate, Seed, SeedGroup};
use imdpp_suite::diffusion::scenario::toy_scenario;
use imdpp_suite::engine::Engine;
use imdpp_suite::graph::{ItemId, UserId};

fn main() {
    // 1. A scenario = social network + item catalogue + KG relevance + dynamics.
    //    `toy_scenario()` wires the Fig. 1 Apple-products KG to a 6-user
    //    social network (Alice, Bob, Cindy and friends).
    let scenario = toy_scenario();
    println!(
        "scenario: {} users, {} items, {} meta-graphs",
        scenario.user_count(),
        scenario.item_count(),
        scenario.relevance().len()
    );

    // 2. The engine is the session: scenario + costs + budget + promotions T,
    //    validated once, then queried as often as needed.
    let costs = CostModel::degree_over_preference(&scenario, 0.2);
    let engine = Engine::builder(scenario)
        .costs(costs)
        .budget(4.0)
        .promotions(3)
        .seed(42)
        .build()
        .expect("valid engine configuration");

    // 3. Solve: the full Dysim pipeline (TMI → DRE → TDSI) on the current
    //    snapshot.
    let report = engine.solve_report();
    let snapshot = engine.snapshot();
    println!(
        "\nDysim selected {} seeds (cost {:.2}):",
        report.seeds.len(),
        report.total_cost
    );
    for seed in report.seeds.seeds() {
        println!(
            "  hire {} to promote {} in promotion {}",
            seed.user,
            snapshot.scenario().catalog().name(seed.item),
            seed.promotion
        );
    }
    println!(
        "identified {} target market(s) over {} nominee(s)",
        report.markets.len(),
        report.nominees.len()
    );

    // 4. Evaluate the importance-aware influence spread σ(S) and compare
    //    against seeding an arbitrary user with an arbitrary item.
    //    `engine.spread` reuses the (cheap) selection sample count; final
    //    reported numbers deserve a denser Monte-Carlo estimate, so pin the
    //    snapshot and evaluate it with 200 samples.
    let evaluator = Evaluator::new(snapshot.instance(), 200, 42);
    let dysim_spread = evaluator.spread(&report.seeds);
    let naive = SeedGroup::from_seeds(vec![Seed::new(UserId(5), ItemId(3), 1)]);
    let naive_spread = evaluator.spread(&naive);
    println!("\nσ(Dysim)  = {dysim_spread:.2}");
    println!("σ(naive)  = {naive_spread:.2}");
    println!(
        "improvement: {:.1}×",
        if naive_spread > 0.0 {
            dysim_spread / naive_spread
        } else {
            f64::INFINITY
        }
    );

    // 5. The world drifts: Alice's influence over Bob strengthens.  `apply`
    //    publishes a new epoch atomically; readers holding the old snapshot
    //    keep a consistent view.
    let applied = engine
        .apply(&ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.9,
        }]))
        .expect("in-range update");
    println!(
        "\napplied drift: now at epoch {} (recomputed {:.0}% of estimator state)",
        applied.epoch,
        100.0 * applied.refresh_fraction
    );
    let drifted = engine.snapshot();
    println!(
        "σ(Dysim) after drift = {:.2}",
        Evaluator::new(drifted.instance(), 200, 42).spread(&report.seeds)
    );

    // 6. The engine recorded the whole session: solve/apply latencies,
    //    refresh counters, epoch churn.  `IMDPP_METRICS=<path>` dumps the
    //    snapshot as JSON for dashboards; disable recording entirely with
    //    `.telemetry(Telemetry::disabled())` on the builder.
    let telemetry = engine.telemetry();
    println!(
        "\ntelemetry: {} solve(s), {} apply(s), apply wall {} ns (refresh {:?} + swap {:?})",
        telemetry.counter("engine.solves").unwrap_or(0),
        telemetry.counter("engine.applies").unwrap_or(0),
        telemetry.histogram("engine.apply_ns").map_or(0, |h| h.sum),
        applied.refresh_wall,
        applied.swap_wall,
    );
    if let Some(path) = imdpp_suite::obs::metrics_env_path() {
        match telemetry.write_to(&path) {
            Ok(()) => println!("telemetry snapshot written to {}", path.display()),
            Err(e) => eprintln!("IMDPP_METRICS: failed to write {}: {e}", path.display()),
        }
    }
}
