//! Quickstart: build a tiny IMDPP instance around the paper's Fig. 1
//! knowledge graph, run Dysim, and compare its seeds against a naive
//! baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use imdpp_suite::core::{CostModel, Dysim, DysimConfig, Evaluator, ImdppInstance};
use imdpp_suite::diffusion::scenario::toy_scenario;
use imdpp_suite::diffusion::{Seed, SeedGroup};
use imdpp_suite::graph::{ItemId, UserId};

fn main() {
    // 1. A scenario = social network + item catalogue + KG relevance + dynamics.
    //    `toy_scenario()` wires the Fig. 1 Apple-products KG to a 6-user
    //    social network (Alice, Bob, Cindy and friends).
    let scenario = toy_scenario();
    println!(
        "scenario: {} users, {} items, {} meta-graphs",
        scenario.user_count(),
        scenario.item_count(),
        scenario.relevance().len()
    );

    // 2. An IMDPP instance adds seeding costs, a budget and the number of
    //    promotions T.
    let costs = CostModel::degree_over_preference(&scenario, 0.2);
    let instance =
        ImdppInstance::new(scenario, costs, /* budget */ 4.0, /* T */ 3).expect("valid instance");

    // 3. Run Dysim.
    let report = Dysim::new(DysimConfig::default()).run_with_report(&instance);
    println!(
        "\nDysim selected {} seeds (cost {:.2}):",
        report.seeds.len(),
        report.total_cost
    );
    for seed in report.seeds.seeds() {
        println!(
            "  hire {} to promote {} in promotion {}",
            seed.user,
            instance.scenario().catalog().name(seed.item),
            seed.promotion
        );
    }
    println!(
        "identified {} target market(s) over {} nominee(s)",
        report.markets.len(),
        report.nominees.len()
    );

    // 4. Evaluate the importance-aware influence spread σ(S) with Monte Carlo
    //    and compare against seeding an arbitrary user with an arbitrary item.
    let evaluator = Evaluator::new(&instance, 200, 42);
    let dysim_spread = evaluator.spread(&report.seeds);
    let naive = SeedGroup::from_seeds(vec![Seed::new(UserId(5), ItemId(3), 1)]);
    let naive_spread = evaluator.spread(&naive);
    println!("\nσ(Dysim)  = {dysim_spread:.2}");
    println!("σ(naive)  = {naive_spread:.2}");
    println!(
        "improvement: {:.1}×",
        if naive_spread > 0.0 {
            dysim_spread / naive_spread
        } else {
            f64::INFINITY
        }
    );
}
