//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope`.
//!
//! Only the `crossbeam::scope(|s| { s.spawn(|_| ...); ... })` entry point the
//! suite uses is provided.  One behavioural difference: when a spawned thread
//! panics, `std::thread::scope` re-raises the panic at the end of the scope
//! instead of returning `Err`, so the `Result` returned here is always `Ok`.
//! Every call site in the suite immediately `expect`s the result, making the
//! two behaviours equivalent in practice.

use std::thread;

/// A handle for spawning scoped threads; a `Copy` wrapper over
/// [`std::thread::Scope`] so it can be captured by many spawn closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread.  The closure receives the scope again (as in
    /// crossbeam), allowing nested spawns.
    pub fn spawn<F, T>(self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(self))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let values = vec![1usize, 2, 3, 4];
        let result = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    values[i]
                });
            }
            42
        })
        .expect("scope must succeed");
        assert_eq!(result, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_passed_scope() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
                hits.fetch_add(1, Ordering::Relaxed)
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
