//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, self-contained implementation of the exact API subset the suite
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator of the real `rand::rngs::StdRng`, but every consumer in this
//! repository only relies on determinism for a fixed seed, never on the exact
//! stream values, so the substitution is behaviour-preserving.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the subset of `rand::SeedableRng` the
/// suite uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The low-level entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `RngCore` (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly (the `SampleRange` machinery of
/// the real crate, collapsed to what the suite needs).
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draws one value; panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`; panics when the range is empty.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The suite's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices (the subset of `rand::seq::SliceRandom`
    /// the suite uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            distinct.insert(v.to_bits());
        }
        assert!(distinct.len() > 900);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_floats_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3u32..3);
    }
}
