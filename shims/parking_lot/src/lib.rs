//! Offline stand-in for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poisoned error
/// (matching `parking_lot::Mutex`'s API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread; a panic in another
    /// thread while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![0i32; 3]);
        m.lock()[1] = 7;
        assert_eq!(m.lock()[1], 7);
        assert_eq!(m.into_inner(), vec![0, 7, 0]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
