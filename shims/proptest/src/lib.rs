//! Offline stand-in for `proptest`.
//!
//! Implements the subset the suite's property tests use: the [`Strategy`]
//! trait with range / tuple / `collection::vec` strategies, the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` family.  Cases are generated from a deterministic RNG
//! derived from the test's module path and case index.  There is no
//! shrinking: a failing case reports its index and message and panics.

pub mod strategy {
    //! Value-generation strategies.

    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut crate::test_runner::TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_for_tuples {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_strategy_for_tuples!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, the per-case RNG and the error type.

    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Returns the deterministic RNG for one test case, derived from the
    /// fully qualified test name and the case index.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }

    /// Run-time configuration of a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod prelude {
    //! The glob import the suite's tests use.

    pub use crate::collection::SizeRange;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each function body runs for `config.cases`
/// deterministic cases with its `name in strategy` arguments regenerated per
/// case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($tt:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($tt)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing case
/// instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u32, f64)>> {
        crate::collection::vec((0u32..10, 0.0f64..1.0), 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_values_respect_strategies(
            v in pairs(),
            k in 1usize..=4,
        ) {
            prop_assert!((1..8).contains(&v.len()));
            prop_assert!((1..=4).contains(&k));
            for &(a, f) in &v {
                prop_assert!(a < 10);
                prop_assert!((0.0..1.0).contains(&f), "f = {f}");
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng("x::y", 3);
        let mut b = crate::test_runner::case_rng("x::y", 3);
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn prop_assert_produces_err() {
        let run = || -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        assert!(run().is_err());
    }
}
