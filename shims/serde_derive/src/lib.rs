//! Offline stand-in for `serde_derive`.
//!
//! The suite derives `Serialize` / `Deserialize` on its data types but never
//! serializes anything (there is no `serde_json` in the tree), so the derive
//! macros only need to *accept* the syntax — including `#[serde(...)]` helper
//! attributes — and can expand to nothing.  The `serde` shim crate provides
//! blanket implementations of the marker traits instead.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to
/// nothing (the `serde` shim blanket-implements the trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands
/// to nothing (the `serde` shim blanket-implements the trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
