//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the suite's benches use — [`Criterion`],
//! [`black_box`], [`BenchmarkId`], `benchmark_group` with `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, plus the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock timer.  When the binary is invoked by `cargo test` (which
//! passes `--test`), every benchmark body runs exactly once so test runs stay
//! fast, mirroring real criterion's behaviour.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    measurement: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated executions of `routine` (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and size the batch so the measured window is ~50 ms but at
        // most 1000 iterations.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measurement = Some((start.elapsed(), iters));
    }
}

/// The top-level benchmark harness.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

fn run_one(test_mode: bool, group: Option<&str>, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        test_mode,
        measurement: None,
    };
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.measurement {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {full:<50} {per_iter:>14.0} ns/iter ({iters} iters)");
        }
        None if test_mode => println!("bench {full:<50} ok (test mode)"),
        None => println!("bench {full:<50} no measurement"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self.test_mode, None, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim sizes batches automatically.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            self.criterion.test_mode,
            Some(&self.name),
            &id.into().id,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            self.criterion.test_mode,
            Some(&self.name),
            &id.id,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut runs = 0u32;
        let mut c = Criterion { test_mode: true };
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
    }
}
