//! Offline stand-in for `serde`.
//!
//! The suite's types derive `Serialize` / `Deserialize` for forward
//! compatibility, but nothing in the tree actually serializes (there is no
//! `serde_json`).  This shim therefore exposes the two names as blanket
//! marker traits plus no-op derive macros, which is all the compiler needs to
//! accept the existing code unchanged.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types (the real trait's `'de` lifetime is dropped — nothing in the suite
/// names it).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct WithHelperAttr {
        #[serde(skip, default = "zero")]
        _field: u32,
    }

    fn assert_marker<T: super::Serialize + super::Deserialize>() {}

    #[test]
    fn derive_and_blanket_impls_compile() {
        assert_marker::<WithHelperAttr>();
        assert_marker::<Vec<String>>();
    }
}
